package mutate

import (
	"errors"
	"testing"
)

// openPair opens two logs over the same base graph in separate directories —
// a primary and a replica of one replicated history.
func openPair(t *testing.T, n int, seed uint64) (*Log, *Log) {
	t.Helper()
	g := testGraph(t, n, seed)
	primary, err := Open(t.TempDir(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	replica, err := Open(t.TempDir(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	return primary, replica
}

// TestSegmentRoundTrip pins the replication invariant: a replica that has
// imported every exported batch is bit-identical to the primary — same
// position (seq, epoch, live fingerprint) and the same journal bytes, so a
// re-export from the replica equals the primary's export.
func TestSegmentRoundTrip(t *testing.T) {
	primary, replica := openPair(t, 80, 5)
	for _, ops := range genBatches(t, primary.Base(), 6, 11) {
		if _, err := primary.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	pos := primary.Position()
	seg, err := primary.Export(pos.BaseFP, pos.Generation, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Batches) != 6 {
		t.Fatalf("exported %d batches, want 6", len(seg.Batches))
	}
	applied, err := replica.Import(seg)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 6 {
		t.Fatalf("imported %d batches, want 6", applied)
	}
	if got := replica.Position(); got != pos {
		t.Fatalf("replica position %+v != primary %+v", got, pos)
	}
	back, err := replica.Export(pos.BaseFP, pos.Generation, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seg.Batches {
		if string(back.Batches[i]) != string(seg.Batches[i]) {
			t.Fatalf("batch %d journal bytes diverge after import", i)
		}
	}
}

// TestSegmentImportIdempotent pins the re-ship case: importing a segment the
// replica already holds verifies byte equality and applies nothing.
func TestSegmentImportIdempotent(t *testing.T) {
	primary, replica := openPair(t, 80, 6)
	for _, ops := range genBatches(t, primary.Base(), 3, 13) {
		if _, err := primary.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	pos := primary.Position()
	seg, err := primary.Export(pos.BaseFP, pos.Generation, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.Import(seg); err != nil {
		t.Fatal(err)
	}
	applied, err := replica.Import(seg)
	if err != nil {
		t.Fatalf("re-import of held batches: %v", err)
	}
	if applied != 0 {
		t.Fatalf("re-import applied %d batches, want 0", applied)
	}
	if got := replica.Position(); got != pos {
		t.Fatalf("position moved on idempotent import: %+v", got)
	}
}

// TestSegmentGap pins the push-ahead case: a segment starting past the
// replica's seq is refused with a gap SyncError carrying the seq to re-ship
// from, and nothing is applied.
func TestSegmentGap(t *testing.T) {
	primary, replica := openPair(t, 80, 7)
	for _, ops := range genBatches(t, primary.Base(), 4, 17) {
		if _, err := primary.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	pos := primary.Position()
	seg, err := primary.Export(pos.BaseFP, pos.Generation, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := replica.Import(seg)
	var syncErr *SyncError
	if !errors.As(err, &syncErr) || syncErr.Field != "gap" {
		t.Fatalf("gap import: err = %v, want gap *SyncError", err)
	}
	if syncErr.Got != "0" {
		t.Fatalf("gap SyncError reports seq %q, want 0 (the re-ship point)", syncErr.Got)
	}
	if applied != 0 || replica.Position().Seq != 0 {
		t.Fatalf("gap import applied %d batches (seq %d), want none", applied, replica.Position().Seq)
	}
}

// TestSegmentHistoryMismatch pins the coordinate binding: exports and
// imports against the wrong base fingerprint or generation are refused as
// SyncErrors before any byte is applied.
func TestSegmentHistoryMismatch(t *testing.T) {
	primary, replica := openPair(t, 80, 8)
	for _, ops := range genBatches(t, primary.Base(), 2, 19) {
		if _, err := primary.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	pos := primary.Position()

	var syncErr *SyncError
	if _, err := primary.Export("0000000000000000", pos.Generation, 0, 0); !errors.As(err, &syncErr) || syncErr.Field != "base" {
		t.Fatalf("wrong-base export: err = %v, want base *SyncError", err)
	}
	if _, err := primary.Export(pos.BaseFP, pos.Generation+1, 0, 0); !errors.As(err, &syncErr) || syncErr.Field != "generation" {
		t.Fatalf("wrong-generation export: err = %v, want generation *SyncError", err)
	}

	seg, err := primary.Export(pos.BaseFP, pos.Generation, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := seg
	bad.Generation = pos.Generation + 1
	if _, err := replica.Import(bad); !errors.As(err, &syncErr) || syncErr.Field != "generation" {
		t.Fatalf("wrong-generation import: err = %v, want generation *SyncError", err)
	}
	if replica.Position().Seq != 0 {
		t.Fatal("refused import still applied batches")
	}
}

// TestSegmentDivergence pins the split-history case: a replica whose journal
// holds a different batch at the same seq refuses the re-ship as a batch
// SyncError instead of silently keeping either side.
func TestSegmentDivergence(t *testing.T) {
	primary, replica := openPair(t, 80, 9)
	if _, err := primary.Apply(genBatches(t, primary.Base(), 1, 23)[0]); err != nil {
		t.Fatal(err)
	}
	// The replica journals a different first batch — a forked history.
	if _, err := replica.Apply(genBatches(t, replica.Base(), 1, 31)[0]); err != nil {
		t.Fatal(err)
	}
	pos := primary.Position()
	seg, err := primary.Export(pos.BaseFP, pos.Generation, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var syncErr *SyncError
	if _, err := replica.Import(seg); !errors.As(err, &syncErr) || syncErr.Field != "batch" {
		t.Fatalf("divergent import: err = %v, want batch *SyncError", err)
	}
}

// TestSegmentExportPaged pins the pull pacing: max bounds one answer and
// consecutive exports walk the full range.
func TestSegmentPaged(t *testing.T) {
	primary, replica := openPair(t, 80, 10)
	for _, ops := range genBatches(t, primary.Base(), 5, 29) {
		if _, err := primary.Apply(ops); err != nil {
			t.Fatal(err)
		}
	}
	pos := primary.Position()
	for replica.Position().Seq < pos.Seq {
		seg, err := primary.Export(pos.BaseFP, pos.Generation, replica.Position().Seq, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.Batches) == 0 || len(seg.Batches) > 2 {
			t.Fatalf("page of %d batches, want 1..2", len(seg.Batches))
		}
		if _, err := replica.Import(seg); err != nil {
			t.Fatal(err)
		}
	}
	if got := replica.Position(); got != pos {
		t.Fatalf("paged pull converged to %+v, want %+v", got, pos)
	}
}
