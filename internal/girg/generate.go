package girg

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// SamplerKind selects the edge-sampling algorithm.
type SamplerKind int

const (
	// SamplerAuto uses the fast sampler except for tiny graphs.
	SamplerAuto SamplerKind = iota
	// SamplerNaive is the quadratic reference sampler.
	SamplerNaive
	// SamplerFast is the expected-linear-time layered sampler.
	SamplerFast
)

// Options tweak graph generation beyond the model parameters.
type Options struct {
	// Sampler selects the edge sampler (default SamplerAuto).
	Sampler SamplerKind
	// Planted vertices occupy ids 0..len(Planted)-1 with caller-fixed
	// positions and weights; the theorems' adversarial s and t.
	Planted []Plant
}

// Generate samples a GIRG from the given parameters and seed. The returned
// graph carries positions, weights, the model intensity and wmin, which is
// everything the routing objective needs.
func Generate(p Params, seed uint64, opts Options) (*graph.Graph, error) {
	rng := xrand.New(seed)
	vs, err := SampleVertices(p, rng, opts.Planted)
	if err != nil {
		return nil, err
	}
	return GenerateEdges(p, vs, rng, opts.Sampler)
}

// GenerateEdges samples the edge set over an existing vertex set. Exposed
// separately so experiments can fix a vertex set and compare samplers or
// regenerate edges.
func GenerateEdges(p Params, vs *Vertices, rng *xrand.RNG, kind SamplerKind) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return GenerateEdgesKernel(p, NewKernel(p), vs, rng, kind)
}

// GenerateEdgesKernel samples edges with a custom edge kernel over the
// vertex set (positions, weights and layering still follow p). The kernel
// must satisfy the EdgeKernel monotonicity contract.
func GenerateEdgesKernel(p Params, kernel EdgeKernel, vs *Vertices, rng *xrand.RNG, kind SamplerKind) (*graph.Graph, error) {
	b, err := graph.NewBuilder(vs.N(), vs.Pos, vs.W, p.N, p.WMin)
	if err != nil {
		return nil, err
	}
	switch kind {
	case SamplerNaive:
		NaiveSamplerKernel(p, kernel, vs, rng, b)
	case SamplerFast:
		FastSamplerKernel(p, kernel, vs, rng, b)
	case SamplerAuto:
		if vs.N() <= 256 {
			NaiveSamplerKernel(p, kernel, vs, rng, b)
		} else {
			FastSamplerKernel(p, kernel, vs, rng, b)
		}
	default:
		return nil, fmt.Errorf("girg: unknown sampler kind %d", kind)
	}
	return b.Finish(), nil
}
