package girg

import (
	"fmt"
	"math"
)

// ExpectedDegree returns the (approximate) expected average degree of the
// model: integrating the soft kernel over the max-norm torus gives the
// marginal connection probability
//
//	P(u ~ v | w_u, w_v) = 2^d lambda^{1/alpha} * alpha/(alpha-1) * k - O(k^alpha),
//	k = w_u w_v / (w_min n),
//
// so with E[W] = w_min (beta-1)/(beta-2),
//
//	E[deg] ~ 2^d lambda^{1/alpha} * alpha/(alpha-1) * ((beta-1)/(beta-2))^2 * w_min.
//
// For the threshold kernel the alpha/(alpha-1) factor is 1 (only the
// saturated ball contributes). The formula ignores the min(.,1) cap for
// heavy vertices and the L2Norm volume constant, so it overestimates
// moderately for beta close to 2; it is intended for choosing lambda, not
// for exact predictions.
func ExpectedDegree(p Params) float64 {
	if err := p.Validate(); err != nil {
		return math.NaN()
	}
	meanW := (p.Beta - 1) / (p.Beta - 2) // in units of wmin
	tail := 1.0
	sat := 1.0
	if !p.Threshold() {
		tail = p.Alpha / (p.Alpha - 1)
		sat = math.Pow(p.Lambda, 1/p.Alpha)
	} else {
		sat = p.Lambda
	}
	return math.Pow(2, float64(p.Dim)) * sat * tail * meanW * meanW * p.WMin
}

// LambdaForDegree returns the kernel prefactor lambda that makes
// ExpectedDegree hit the target average degree, leaving all other
// parameters of p fixed. It errors if the target is not achievable with a
// positive lambda.
func LambdaForDegree(p Params, target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("girg: non-positive target degree %v", target)
	}
	probe := p
	probe.Lambda = 1
	base := ExpectedDegree(probe)
	if math.IsNaN(base) || base <= 0 {
		return 0, fmt.Errorf("girg: cannot calibrate invalid parameters")
	}
	ratio := target / base
	if p.Threshold() {
		return ratio, nil
	}
	// Degree scales as lambda^{1/alpha}.
	return math.Pow(ratio, p.Alpha), nil
}
