package girg

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestParamsValidate(t *testing.T) {
	base := DefaultParams(1000)
	if err := base.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutate := func(f func(*Params)) Params {
		p := base
		f(&p)
		return p
	}
	bad := []Params{
		mutate(func(p *Params) { p.N = 0 }),
		mutate(func(p *Params) { p.Dim = 0 }),
		mutate(func(p *Params) { p.Dim = 99 }),
		mutate(func(p *Params) { p.Beta = 2 }),
		mutate(func(p *Params) { p.Alpha = 1 }),
		mutate(func(p *Params) { p.Alpha = 0.5 }),
		mutate(func(p *Params) { p.WMin = 0 }),
		mutate(func(p *Params) { p.Lambda = 0 }),
		mutate(func(p *Params) { p.WMax = 0.5 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
	inf := mutate(func(p *Params) { p.Alpha = math.Inf(1) })
	if err := inf.Validate(); err != nil {
		t.Errorf("threshold params rejected: %v", err)
	}
	if !inf.Threshold() || base.Threshold() {
		t.Error("Threshold() misreports")
	}
}

func TestKernelSoft(t *testing.T) {
	p := DefaultParams(100)
	p.Alpha = 2
	k := NewKernel(p)
	// K = wu*wv/(wmin*n) = 1*1/100 = 0.01.
	// distPow = 0.01 -> ratio 1 -> p = 1 (saturated).
	if got := k.Prob(1, 1, 0.01); got != 1 {
		t.Errorf("Prob at saturation = %v, want 1", got)
	}
	// distPow = 0.04 -> ratio 1/4 -> p = (1/4)^2 = 1/16.
	if got := k.Prob(1, 1, 0.04); math.Abs(got-1.0/16) > 1e-12 {
		t.Errorf("Prob = %v, want 1/16", got)
	}
	// Zero distance connects surely.
	if got := k.Prob(1, 1, 0); got != 1 {
		t.Errorf("Prob at distance 0 = %v", got)
	}
}

func TestKernelThreshold(t *testing.T) {
	p := DefaultParams(100)
	p.Alpha = math.Inf(1)
	k := NewKernel(p)
	if got := k.Prob(1, 1, 0.0099); got != 1 {
		t.Errorf("inside threshold: %v", got)
	}
	if got := k.Prob(1, 1, 0.0101); got != 0 {
		t.Errorf("outside threshold: %v", got)
	}
}

func TestKernelMonotonicity(t *testing.T) {
	p := DefaultParams(1000)
	k := NewKernel(p)
	rng := xrand.New(5)
	for trial := 0; trial < 2000; trial++ {
		wu := rng.PowerLaw(1, 2.5)
		wv := rng.PowerLaw(1, 2.5)
		d1 := rng.Float64() * 0.25
		d2 := d1 + rng.Float64()*0.25
		p1 := k.Prob(wu, wv, d1)
		p2 := k.Prob(wu, wv, d2)
		if p2 > p1+1e-15 {
			t.Fatalf("kernel not decreasing in distance: %v < %v", p1, p2)
		}
		if k.Prob(2*wu, wv, d2) < p2 {
			t.Fatalf("kernel not increasing in weight")
		}
		// Symmetry in the two weights.
		if math.Abs(k.Prob(wu, wv, d1)-k.Prob(wv, wu, d1)) > 1e-15 {
			t.Fatalf("kernel not symmetric")
		}
	}
}

func TestSaturationDistPow(t *testing.T) {
	for _, alpha := range []float64{1.5, 2, 5, math.Inf(1)} {
		p := DefaultParams(500)
		p.Alpha = alpha
		k := NewKernel(p)
		for _, wuwv := range []float64{1, 4, 100} {
			sat := k.SaturationDistPow(wuwv)
			w := math.Sqrt(wuwv)
			if got := k.Prob(w, w, sat*0.999); got != 1 {
				t.Errorf("alpha=%v wuwv=%v: Prob just inside saturation = %v", alpha, wuwv, got)
			}
			if got := k.Prob(w, w, sat*1.001); got >= 1 {
				t.Errorf("alpha=%v wuwv=%v: Prob just outside saturation = %v", alpha, wuwv, got)
			}
		}
	}
}

func TestSampleVerticesCounts(t *testing.T) {
	p := DefaultParams(500)
	p.FixedN = true
	vs, err := SampleVertices(p, xrand.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if vs.N() != 500 {
		t.Fatalf("FixedN: got %d vertices", vs.N())
	}
	p.FixedN = false
	// Poisson(500) should be within 5 sigma of 500.
	vs, err = SampleVertices(p, xrand.New(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(float64(vs.N()) - 500); d > 5*math.Sqrt(500) {
		t.Fatalf("Poisson vertex count %d too far from 500", vs.N())
	}
	for i, w := range vs.W {
		if w < p.WMin {
			t.Fatalf("vertex %d weight %v below wmin", i, w)
		}
	}
}

func TestSampleVerticesPlanted(t *testing.T) {
	p := DefaultParams(100)
	p.FixedN = true
	planted := []Plant{
		{Pos: []float64{0.25, 0.75}, W: 3},
		{Pos: []float64{1.1, -0.2}, W: 2}, // wraps to (0.1, 0.8)
		{W: 5},                            // random position
	}
	vs, err := SampleVertices(p, xrand.New(3), planted)
	if err != nil {
		t.Fatal(err)
	}
	if vs.N() != 103 || vs.Planted != 3 {
		t.Fatalf("N=%d planted=%d", vs.N(), vs.Planted)
	}
	if got := vs.Pos.At(0); got[0] != 0.25 || got[1] != 0.75 {
		t.Fatalf("planted 0 at %v", got)
	}
	if got := vs.Pos.At(1); math.Abs(got[0]-0.1) > 1e-12 || math.Abs(got[1]-0.8) > 1e-12 {
		t.Fatalf("planted 1 at %v (wrap failed)", got)
	}
	if vs.W[0] != 3 || vs.W[1] != 2 || vs.W[2] != 5 {
		t.Fatalf("planted weights %v", vs.W[:3])
	}
}

func TestSampleVerticesPlantedErrors(t *testing.T) {
	p := DefaultParams(100)
	if _, err := SampleVertices(p, xrand.New(1), []Plant{{W: 0.5}}); err == nil {
		t.Error("weight below wmin accepted")
	}
	if _, err := SampleVertices(p, xrand.New(1), []Plant{{W: 1, Pos: []float64{0.5}}}); err == nil {
		t.Error("wrong-dimension position accepted")
	}
	p.WMax = 10
	if _, err := SampleVertices(p, xrand.New(1), []Plant{{W: 20}}); err == nil {
		t.Error("weight above wmax accepted")
	}
}

func TestWMaxTruncation(t *testing.T) {
	p := DefaultParams(2000)
	p.FixedN = true
	p.WMax = 8
	vs, err := SampleVertices(p, xrand.New(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range vs.W {
		if w > 8 || w < 1 {
			t.Fatalf("weight %v outside [1, 8]", w)
		}
	}
}

// expectedEdges computes the exact expected edge count of a fixed vertex set.
func expectedEdges(p Params, vs *Vertices) float64 {
	k := NewKernel(p)
	space := vs.Pos.Space()
	sum := 0.0
	for u := 0; u < vs.N(); u++ {
		for v := u + 1; v < vs.N(); v++ {
			sum += k.Prob(vs.W[u], vs.W[v], space.DistPow(vs.Pos.At(u), vs.Pos.At(v)))
		}
	}
	return sum
}

// TestThresholdSamplersIdentical is the strongest sampler test: with the
// threshold kernel the edge set is a deterministic function of the vertex
// set, so the naive and fast samplers must produce exactly the same graph —
// covering every pair exactly once across all layer pairs, levels and cell
// types.
func TestThresholdSamplersIdentical(t *testing.T) {
	for _, tc := range []struct {
		dim    int
		lambda float64
		n      float64
	}{
		{1, 1, 400}, {2, 1, 400}, {3, 1, 300},
		{2, 20, 300},   // large saturation radius -> shallow comparison levels
		{2, 0.05, 600}, // small radius -> deep comparison levels
	} {
		p := DefaultParams(tc.n)
		p.Dim = tc.dim
		p.Alpha = math.Inf(1)
		p.Lambda = tc.lambda
		p.FixedN = true
		vs, err := SampleVertices(p, xrand.New(uint64(tc.dim)*1000+uint64(tc.n)), nil)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := GenerateEdges(p, vs, xrand.New(1), SamplerNaive)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := GenerateEdges(p, vs, xrand.New(2), SamplerFast)
		if err != nil {
			t.Fatal(err)
		}
		if gn.M() != gf.M() {
			t.Fatalf("dim=%d lambda=%v: edge counts differ: naive %d, fast %d",
				tc.dim, tc.lambda, gn.M(), gf.M())
		}
		for v := 0; v < gn.N(); v++ {
			a, b := gn.Neighbors(v), gf.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("dim=%d lambda=%v: degree of %d differs: %d vs %d", tc.dim, tc.lambda, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("dim=%d lambda=%v: adjacency of %d differs", tc.dim, tc.lambda, v)
				}
			}
		}
	}
}

// TestFastSamplerNoDuplicates forces p = 1 for every pair and checks the
// fast sampler emits each pair exactly once (complete coverage, no dupes).
func TestFastSamplerNoDuplicates(t *testing.T) {
	p := DefaultParams(150)
	p.Lambda = 1e12
	p.FixedN = true
	vs, err := SampleVertices(p, xrand.New(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.NewBuilder(vs.N(), vs.Pos, vs.W, p.N, p.WMin)
	if err != nil {
		t.Fatal(err)
	}
	FastSampler(p, vs, xrand.New(8), b)
	want := vs.N() * (vs.N() - 1) / 2
	if b.EdgeCount() != want {
		t.Fatalf("complete graph: emitted %d raw edges, want %d", b.EdgeCount(), want)
	}
	if g := b.Finish(); g.M() != want {
		t.Fatalf("complete graph: %d edges after dedup, want %d", g.M(), want)
	}
}

// TestSamplersAgreeSoftKernel compares mean edge counts of both samplers
// against the exact expectation for a fixed vertex set.
func TestSamplersAgreeSoftKernel(t *testing.T) {
	for _, alpha := range []float64{1.5, 3} {
		p := DefaultParams(300)
		p.Alpha = alpha
		p.FixedN = true
		vs, err := SampleVertices(p, xrand.New(11), nil)
		if err != nil {
			t.Fatal(err)
		}
		mu := expectedEdges(p, vs)
		const reps = 40
		run := func(kind SamplerKind, seed uint64) float64 {
			sum := 0.0
			for r := 0; r < reps; r++ {
				g, err := GenerateEdges(p, vs, xrand.New(seed+uint64(r)), kind)
				if err != nil {
					t.Fatal(err)
				}
				sum += float64(g.M())
			}
			return sum / reps
		}
		meanNaive := run(SamplerNaive, 100)
		meanFast := run(SamplerFast, 200)
		tol := 5 * math.Sqrt(mu/reps)
		if math.Abs(meanNaive-mu) > tol {
			t.Errorf("alpha=%v: naive mean %v vs exact %v (tol %v)", alpha, meanNaive, mu, tol)
		}
		if math.Abs(meanFast-mu) > tol {
			t.Errorf("alpha=%v: fast mean %v vs exact %v (tol %v)", alpha, meanFast, mu, tol)
		}
	}
}

// TestPlantedDegreesScaleWithWeight checks Lemma 7.2: E[deg(v)] = Theta(w_v),
// by planting vertices of weights {2, 8, 32} and comparing mean degrees.
func TestPlantedDegreesScaleWithWeight(t *testing.T) {
	p := DefaultParams(3000)
	p.FixedN = true
	planted := []Plant{{W: 2}, {W: 8}, {W: 32}}
	const reps = 25
	var deg [3]float64
	for r := 0; r < reps; r++ {
		g, err := Generate(p, uint64(1000+r), Options{Planted: planted})
		if err != nil {
			t.Fatal(err)
		}
		for i := range deg {
			deg[i] += float64(g.Degree(i))
		}
	}
	for i := range deg {
		deg[i] /= reps
	}
	// Ratios of expected degrees should track the weight ratios (4x each).
	r1 := deg[1] / deg[0]
	r2 := deg[2] / deg[1]
	if r1 < 2.5 || r1 > 6 || r2 < 2.5 || r2 > 6 {
		t.Fatalf("degree scaling broken: degs %v, ratios %v %v", deg, r1, r2)
	}
}

// TestMarginalConnectionProbability checks Lemma 7.1: over random positions,
// Pr[u ~ v | w_u, w_v] = Theta(min(w_u w_v / (w_min n), 1)).
func TestMarginalConnectionProbability(t *testing.T) {
	p := DefaultParams(200)
	k := NewKernel(p)
	space, rng := mustSpace(t, p.Dim), xrand.New(13)
	const trials = 300000
	x := make([]float64, p.Dim)
	y := make([]float64, p.Dim)
	// For small kk = wprod/(wmin n) the exact marginal is
	// 2^d * alpha/(alpha-1) * kk (integrating the kernel over the torus).
	theta := math.Pow(2, float64(p.Dim)) * p.Alpha / (p.Alpha - 1)
	for _, wprod := range []float64{1, 5, 10} {
		w := math.Sqrt(wprod)
		sum := 0.0
		for i := 0; i < trials; i++ {
			for j := range x {
				x[j] = rng.Float64()
				y[j] = rng.Float64()
			}
			sum += k.Prob(w, w, space.DistPow(x, y))
		}
		got := sum / trials
		want := theta * wprod / (p.WMin * p.N)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("marginal prob for wprod=%v: got %v, want %v", wprod, got, want)
		}
	}
}

func mustSpace(t *testing.T, dim int) spaceIface {
	t.Helper()
	p := DefaultParams(10)
	p.Dim = dim
	vs, err := SampleVertices(p, xrand.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	return vs.Pos.Space()
}

type spaceIface interface {
	DistPow(x, y []float64) float64
}

func TestGenerateEndToEnd(t *testing.T) {
	p := DefaultParams(1000)
	g, err := Generate(p, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 800 || g.N() > 1200 {
		t.Fatalf("vertex count %d", g.N())
	}
	if g.M() == 0 {
		t.Fatal("no edges")
	}
	// With lambda = 1 the kernel constants give E[deg | w] ~ 2^d * alpha/(alpha-1)
	// * E[W]/wmin * w = 24w here, capped by min(.,1) for heavy vertices.
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 20 || avg > 90 {
		t.Fatalf("implausible average degree %v", avg)
	}
	if g.Intensity() != p.N || g.WMin() != p.WMin {
		t.Fatal("model params not propagated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams(500)
	g1, err := Generate(p, 99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(p, 99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatalf("same seed produced different graphs: (%d,%d) vs (%d,%d)",
			g1.N(), g1.M(), g2.N(), g2.M())
	}
	for v := 0; v < g1.N(); v++ {
		a, b := g1.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree of %d differs across runs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency of %d differs across runs", v)
			}
		}
	}
}

func TestGenerateInvalidParams(t *testing.T) {
	p := DefaultParams(100)
	p.Beta = 1.5
	if _, err := Generate(p, 1, Options{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestGenerateUnknownSampler(t *testing.T) {
	p := DefaultParams(100)
	if _, err := Generate(p, 1, Options{Sampler: SamplerKind(99)}); err == nil {
		t.Fatal("unknown sampler accepted")
	}
}

func TestDegreeDistributionPowerLaw(t *testing.T) {
	// The degree sequence should be scale-free with exponent ~ beta
	// (Section 1.1 claim (2)). Fit in the tail and allow a generous band.
	p := DefaultParams(30000)
	p.Beta = 2.5
	p.FixedN = true
	g, err := Generate(p, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The k^-beta tail appears above the mean-degree scale (~24 here), so
	// fit well above it.
	beta := graph.PowerLawExponentFit(g, 150)
	if math.IsNaN(beta) || beta < 2.15 || beta > 2.85 {
		t.Fatalf("degree exponent %v, want ~2.5", beta)
	}
}

func TestGiantComponentExists(t *testing.T) {
	p := DefaultParams(5000)
	p.WMin = 2 // denser -> clear giant
	g, err := Generate(p, 21, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, sizes, giant := graph.Components(g)
	frac := float64(sizes[giant]) / float64(g.N())
	if frac < 0.5 {
		t.Fatalf("giant component fraction %v, want > 0.5", frac)
	}
}

func TestClusteringIsConstant(t *testing.T) {
	// GIRGs have constant (non-vanishing) clustering; check it stays well
	// above the Chung-Lu/Erdos-Renyi level at two sizes.
	for _, n := range []float64{2000, 8000} {
		p := DefaultParams(n)
		p.FixedN = true
		g, err := Generate(p, 31, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c := graph.MeanClustering(g, 2000, xrand.New(1))
		if c < 0.05 {
			t.Fatalf("n=%v: clustering %v too small", n, c)
		}
	}
}

func BenchmarkFastSampler10k(b *testing.B) {
	p := DefaultParams(10000)
	p.FixedN = true
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, uint64(i), Options{Sampler: SamplerFast}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveSampler1k(b *testing.B) {
	p := DefaultParams(1000)
	p.FixedN = true
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, uint64(i), Options{Sampler: SamplerNaive}); err != nil {
			b.Fatal(err)
		}
	}
}

// rngFor builds a fresh RNG for the L2/calibration tests.
func rngFor(seed uint64) *xrand.RNG { return xrand.New(seed) }

// TestThresholdIdentityQuick fuzzes the fast sampler against the naive
// reference over random parameter configurations; the threshold kernel
// makes the comparison exact.
func TestThresholdIdentityQuick(t *testing.T) {
	rng := xrand.New(777)
	for trial := 0; trial < 15; trial++ {
		p := DefaultParams(float64(100 + rng.IntN(400)))
		p.Dim = 1 + rng.IntN(3)
		p.Alpha = math.Inf(1)
		p.Beta = 2.05 + rng.Float64()*0.9
		p.WMin = 0.5 + rng.Float64()*2
		p.Lambda = math.Pow(10, rng.Float64()*3-2) // 0.01 .. 10
		p.FixedN = true
		vs, err := SampleVertices(p, xrand.New(uint64(trial)+5000), nil)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := GenerateEdges(p, vs, xrand.New(1), SamplerNaive)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := GenerateEdges(p, vs, xrand.New(2), SamplerFast)
		if err != nil {
			t.Fatal(err)
		}
		if gn.M() != gf.M() {
			t.Fatalf("trial %d (%+v): %d vs %d edges", trial, p, gn.M(), gf.M())
		}
		for v := 0; v < gn.N(); v++ {
			a, b := gn.Neighbors(v), gf.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("trial %d: degree of %d differs", trial, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: adjacency of %d differs", trial, v)
				}
			}
		}
	}
}
