package girg

import (
	"math"
	"testing"

	"repro/internal/torus"
)

func TestExpectedDegreeMatchesSampledDenseRegime(t *testing.T) {
	// For beta comfortably above 2 (weak heavy tail) the small-k formula
	// should land within ~25% of the sampled average degree.
	p := DefaultParams(20000)
	p.Beta = 2.8
	p.Lambda = 0.02
	p.FixedN = true
	want := ExpectedDegree(p)
	g, err := Generate(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := 2 * float64(g.M()) / float64(g.N())
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("expected degree %v, sampled %v", want, got)
	}
}

func TestExpectedDegreeInvalidParams(t *testing.T) {
	p := DefaultParams(100)
	p.Beta = 1.5
	if !math.IsNaN(ExpectedDegree(p)) {
		t.Fatal("invalid params must give NaN")
	}
}

func TestLambdaForDegreeRoundTrip(t *testing.T) {
	p := DefaultParams(50000)
	p.Beta = 2.7
	for _, target := range []float64{2, 8, 20} {
		lam, err := LambdaForDegree(p, target)
		if err != nil {
			t.Fatal(err)
		}
		p2 := p
		p2.Lambda = lam
		if got := ExpectedDegree(p2); math.Abs(got-target)/target > 1e-9 {
			t.Fatalf("target %v: calibrated lambda %v gives %v", target, lam, got)
		}
	}
}

func TestLambdaForDegreeThreshold(t *testing.T) {
	p := DefaultParams(50000)
	p.Alpha = math.Inf(1)
	lam, err := LambdaForDegree(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Lambda = lam
	if got := ExpectedDegree(p); math.Abs(got-10) > 1e-9 {
		t.Fatalf("threshold calibration gives %v", got)
	}
}

func TestLambdaForDegreeErrors(t *testing.T) {
	p := DefaultParams(100)
	if _, err := LambdaForDegree(p, 0); err == nil {
		t.Fatal("zero target accepted")
	}
	p.Beta = 1.5
	if _, err := LambdaForDegree(p, 5); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestCalibratedSampledDegree(t *testing.T) {
	// End to end: calibrate for degree 10 and verify the sampled graph is
	// in the right ballpark (the formula ignores the heavy-tail cap, so
	// allow a generous band).
	p := DefaultParams(30000)
	p.Beta = 2.6
	p.FixedN = true
	lam, err := LambdaForDegree(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	p.Lambda = lam
	g, err := Generate(p, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := 2 * float64(g.M()) / float64(g.N())
	if got < 5 || got > 15 {
		t.Fatalf("calibrated degree %v, want ~10", got)
	}
}

func TestL2NormModel(t *testing.T) {
	// The model works under the Euclidean norm too: samplers agree exactly
	// for threshold kernels and the graph is structurally similar.
	p := DefaultParams(500)
	p.Norm = torus.L2Norm
	p.Alpha = math.Inf(1)
	p.FixedN = true
	vs, err := SampleVertices(p, rngFor(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	gn, err := GenerateEdges(p, vs, rngFor(2), SamplerNaive)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := GenerateEdges(p, vs, rngFor(3), SamplerFast)
	if err != nil {
		t.Fatal(err)
	}
	if gn.M() != gf.M() {
		t.Fatalf("L2 threshold samplers differ: %d vs %d edges", gn.M(), gf.M())
	}
	for v := 0; v < gn.N(); v++ {
		a, b := gn.Neighbors(v), gf.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("L2: degree of %d differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("L2: adjacency of %d differs", v)
			}
		}
	}
	if gn.M() == 0 {
		t.Fatal("no edges under L2 norm")
	}
}

func TestL2SoftKernelRouting(t *testing.T) {
	// Soft kernel + L2 norm: generation succeeds and the graph has a giant
	// component with sane density.
	p := DefaultParams(3000)
	p.Norm = torus.L2Norm
	p.FixedN = true
	g, err := Generate(p, 11, Options{})
	if err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 5 || avg > 120 {
		t.Fatalf("L2 average degree %v", avg)
	}
}

func TestInvalidNormRejected(t *testing.T) {
	p := DefaultParams(100)
	p.Norm = torus.Norm(99)
	if _, err := Generate(p, 1, Options{}); err == nil {
		t.Fatal("invalid norm accepted")
	}
}

func TestCubeGeometryThresholdIdentity(t *testing.T) {
	// The fast sampler must stay exact on the cube [0,1]^d: boundary cells
	// lose wrap-around neighbors and the type-II candidate set shrinks,
	// but coverage must remain exactly once per pair.
	for _, dim := range []int{1, 2} {
		p := DefaultParams(500)
		p.Dim = dim
		p.Geometry = torus.Cube
		p.Alpha = math.Inf(1)
		p.FixedN = true
		vs, err := SampleVertices(p, rngFor(uint64(300+dim)), nil)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := GenerateEdges(p, vs, rngFor(1), SamplerNaive)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := GenerateEdges(p, vs, rngFor(2), SamplerFast)
		if err != nil {
			t.Fatal(err)
		}
		if gn.M() != gf.M() {
			t.Fatalf("dim=%d cube: %d vs %d edges", dim, gn.M(), gf.M())
		}
		for v := 0; v < gn.N(); v++ {
			a, b := gn.Neighbors(v), gf.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("dim=%d cube: degree of %d differs", dim, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("dim=%d cube: adjacency of %d differs", dim, v)
				}
			}
		}
	}
}
