package girg

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// NaiveSampler draws every edge by flipping an explicit coin for each of the
// n(n-1)/2 vertex pairs. It is the reference implementation: trivially
// correct, quadratic, and used to cross-validate the fast sampler. Keep it
// for n up to a few tens of thousands.
func NaiveSampler(p Params, vs *Vertices, rng *xrand.RNG, b *graph.Builder) {
	NaiveSamplerKernel(p, NewKernel(p), vs, rng, b)
}

// NaiveSamplerKernel is NaiveSampler with a custom edge kernel.
func NaiveSamplerKernel(p Params, kernel EdgeKernel, vs *Vertices, rng *xrand.RNG, b *graph.Builder) {
	space := vs.Pos.Space()
	n := vs.N()
	for u := 0; u < n; u++ {
		pu := vs.Pos.At(u)
		wu := vs.W[u]
		for v := u + 1; v < n; v++ {
			distPow := space.DistPow(pu, vs.Pos.At(v))
			if rng.Bernoulli(kernel.Prob(wu, vs.W[v], distPow)) {
				b.AddEdge(u, v)
			}
		}
	}
}
