package girg

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// FastSampler draws the GIRG edge set in expected near-linear time using the
// layered cell technique of Bringmann, Keusch and Lengler ("Sampling
// geometric inhomogeneous random graphs in linear time", ESA 2017):
//
//  1. Vertices are partitioned into weight layers L_i = [wmin 2^i, wmin 2^{i+1}).
//  2. Within each layer, vertices are sorted by the Morton code of their
//     position at a deep grid level, so the vertices of any cell at any
//     level form one contiguous slice.
//  3. For every pair of layers (i, j) a comparison level l(i,j) is chosen so
//     that one grid cell just covers the kernel's saturation radius for the
//     layers' maximum weights. Pairs in identical or adjacent cells at that
//     level ("type I") get exact per-pair coins. Pairs in cells that first
//     become non-adjacent at some level ("type II") are drawn by geometric
//     skipping with the kernel evaluated at the cells' minimum distance as
//     an upper bound, followed by exact rejection.
//
// Every unordered vertex pair is covered by exactly one (layer pair, cell
// pair) combination, so the sampled distribution is exactly the model's.
func FastSampler(p Params, vs *Vertices, rng *xrand.RNG, b *graph.Builder) {
	FastSamplerKernel(p, NewKernel(p), vs, rng, b)
}

// FastSamplerKernel runs the fast sampler with a custom edge kernel (e.g.
// the Fermi-Dirac kernel of embedded hyperbolic random graphs). The kernel
// must satisfy the EdgeKernel monotonicity contract.
func FastSamplerKernel(p Params, kernel EdgeKernel, vs *Vertices, rng *xrand.RNG, b *graph.Builder) {
	n := vs.N()
	if n < 2 {
		return
	}
	space := vs.Pos.Space()
	s := &fastState{
		params: p,
		kernel: kernel,
		vs:     vs,
		space:  space,
		rng:    rng,
		b:      b,
		dim:    space.Dim(),
	}
	s.deepLevel = deepLevel(space, n)
	s.buildLayers()
	for i := range s.layers {
		for j := i; j < len(s.layers); j++ {
			s.sampleLayerPair(i, j)
		}
	}
}

// deepLevel picks the deepest grid level used for Morton sorting: fine
// enough that comparison levels are never clamped in practice (about one
// vertex per cell), capped by code capacity.
func deepLevel(space torus.Space, n int) int {
	l := int(math.Ceil(math.Log2(float64(n))/float64(space.Dim()))) + 1
	if l < 1 {
		l = 1
	}
	if maxL := space.MaxLevel(); l > maxL {
		l = maxL
	}
	return l
}

// fastLayer holds one weight layer's vertices in Morton order.
type fastLayer struct {
	wUpper float64 // exclusive upper bound on weights in the layer
	ids    []int32
	codes  []uint64 // Morton codes at deepLevel, sorted; parallel to ids
}

type fastState struct {
	params    Params
	kernel    EdgeKernel
	vs        *Vertices
	space     torus.Space
	rng       *xrand.RNG
	b         *graph.Builder
	dim       int
	deepLevel int
	layers    []fastLayer

	nbrBuf  []uint64 // scratch for neighbor cell enumeration
	typeIIB []uint64 // scratch for type-II partner enumeration
}

func (s *fastState) buildLayers() {
	wmin := s.params.WMin
	// Layer index of weight w: floor(log2(w/wmin)), clamped at 0 for
	// w == wmin boundary noise.
	layerOf := func(w float64) int {
		l := int(math.Log2(w / wmin))
		if l < 0 {
			l = 0
		}
		return l
	}
	maxLayer := 0
	for _, w := range s.vs.W {
		if l := layerOf(w); l > maxLayer {
			maxLayer = l
		}
	}
	s.layers = make([]fastLayer, maxLayer+1)
	for i := range s.layers {
		s.layers[i].wUpper = wmin * math.Pow(2, float64(i+1))
	}
	for v, w := range s.vs.W {
		l := layerOf(w)
		s.layers[l].ids = append(s.layers[l].ids, int32(v))
	}
	for i := range s.layers {
		lay := &s.layers[i]
		lay.codes = make([]uint64, len(lay.ids))
		for k, id := range lay.ids {
			lay.codes[k] = s.space.Encode(s.vs.Pos.At(int(id)), s.deepLevel)
		}
		sort.Sort(byCode{lay})
	}
}

// byCode sorts a layer's ids and codes together by code.
type byCode struct{ l *fastLayer }

func (b byCode) Len() int           { return len(b.l.ids) }
func (b byCode) Less(i, j int) bool { return b.l.codes[i] < b.l.codes[j] }
func (b byCode) Swap(i, j int) {
	b.l.ids[i], b.l.ids[j] = b.l.ids[j], b.l.ids[i]
	b.l.codes[i], b.l.codes[j] = b.l.codes[j], b.l.codes[i]
}

// cellRange returns the [lo, hi) index range of the layer's vertices lying
// in cell `cell` at the given level.
func (l *fastLayer) cellRange(cell uint64, level, deepLevel, dim int) (lo, hi int) {
	shift := uint(dim * (deepLevel - level))
	loCode := cell << shift
	hiCode := (cell + 1) << shift
	lo = sort.Search(len(l.codes), func(i int) bool { return l.codes[i] >= loCode })
	hi = sort.Search(len(l.codes), func(i int) bool { return l.codes[i] >= hiCode })
	return lo, hi
}

// compLevel returns the comparison level for a saturation volume satPow
// (dist^d at which the kernel saturates): the deepest level whose cells
// still have volume >= satPow, clamped to [0, deepLevel].
func (s *fastState) compLevel(satPow float64) int {
	if satPow <= 0 {
		return s.deepLevel
	}
	if satPow >= 1 {
		return 0
	}
	l := int(-math.Log2(satPow)) / s.dim
	if l < 0 {
		l = 0
	}
	if l > s.deepLevel {
		l = s.deepLevel
	}
	return l
}

func (s *fastState) sampleLayerPair(i, j int) {
	li, lj := &s.layers[i], &s.layers[j]
	if len(li.ids) == 0 || len(lj.ids) == 0 {
		return
	}
	satPow := s.kernel.SaturationDistPow(li.wUpper * lj.wUpper)
	lvl := s.compLevel(satPow)

	// Type I: identical or adjacent cells at the comparison level.
	s.forEachNonemptyCell(li, lvl, func(cellA uint64, aLo, aHi int) {
		s.nbrBuf = s.space.NeighborCells(cellA, lvl, s.nbrBuf[:0])
		for _, cellB := range s.nbrBuf {
			if i == j && cellB < cellA {
				continue // unordered cell pair within one layer
			}
			bLo, bHi := lj.cellRange(cellB, lvl, s.deepLevel, s.dim)
			if bLo == bHi {
				continue
			}
			if i == j && cellA == cellB {
				s.exactPairsSameSlice(li, aLo, aHi)
			} else {
				s.exactPairsCross(li, aLo, aHi, lj, bLo, bHi)
			}
		}
	})

	// Type II: cell pairs that first become non-adjacent at level l2 <= lvl
	// (non-adjacent cells with adjacent parents).
	wi, wj := li.wUpper, lj.wUpper
	for l2 := 1; l2 <= lvl; l2++ {
		s.forEachNonemptyCell(li, l2, func(cellA uint64, aLo, aHi int) {
			s.typeIIB = s.typeIIPartners(cellA, l2, s.typeIIB[:0])
			for _, cellB := range s.typeIIB {
				if i == j && cellB < cellA {
					continue
				}
				bLo, bHi := lj.cellRange(cellB, l2, s.deepLevel, s.dim)
				if bLo == bHi {
					continue
				}
				minDist := s.space.CellMinDist(cellA, cellB, l2)
				pbar := s.kernel.Prob(wi, wj, ipow(minDist, s.dim))
				if pbar <= 0 {
					continue
				}
				s.skipSampling(li, aLo, aHi, lj, bLo, bHi, pbar)
			}
		})
	}
}

// forEachNonemptyCell walks the distinct cells (at the given level) occupied
// by the layer's vertices, in Morton order, invoking fn with the cell code
// and the layer index range of its vertices.
func (s *fastState) forEachNonemptyCell(l *fastLayer, level int, fn func(cell uint64, lo, hi int)) {
	shift := uint(s.dim * (s.deepLevel - level))
	pos := 0
	for pos < len(l.codes) {
		cell := l.codes[pos] >> shift
		hiCode := (cell + 1) << shift
		end := pos + sort.Search(len(l.codes)-pos, func(k int) bool { return l.codes[pos+k] >= hiCode })
		fn(cell, pos, end)
		pos = end
	}
}

// typeIIPartners appends the cells B at the given level such that B is not
// adjacent to cellA but parent(B) is adjacent to parent(A). These are
// exactly the cell pairs "first separated" at this level; each unordered
// pair of cells is generated from both endpoints (callers dedupe for the
// same-layer case).
func (s *fastState) typeIIPartners(cellA uint64, level int, dst []uint64) []uint64 {
	side := uint32(1) << uint(level)
	var coords [torus.MaxDim]uint32
	s.space.DecodeCoords(cellA, level, coords[:s.dim])
	parentA := s.space.ParentCell(cellA)
	// Candidate offsets per axis: within +-3 (children of adjacent parents
	// can differ by at most 3 per axis).
	var cand [torus.MaxDim][]uint32
	var seen [7]uint32
	for ax := 0; ax < s.dim; ax++ {
		vals := seen[:0]
		for off := -3; off <= 3; off++ {
			c, ok := s.space.OffsetCoord(coords[ax], off, side)
			if !ok {
				continue // cube boundary: no cell there
			}
			dup := false
			for _, x := range vals {
				if x == c {
					dup = true
					break
				}
			}
			if !dup {
				vals = append(vals, c)
			}
		}
		cand[ax] = append([]uint32(nil), vals...)
	}
	var cur [torus.MaxDim]uint32
	var rec func(ax int)
	rec = func(ax int) {
		if ax == s.dim {
			cellB := s.space.EncodeCoords(cur[:s.dim], level)
			if s.space.CellMinDist(cellA, cellB, level) == 0 {
				return // adjacent or identical: type I territory
			}
			parentB := s.space.ParentCell(cellB)
			if s.space.CellMinDist(parentA, parentB, level-1) != 0 {
				return // parents not adjacent: handled at a shallower level
			}
			dst = append(dst, cellB)
			return
		}
		for _, v := range cand[ax] {
			cur[ax] = v
			rec(ax + 1)
		}
	}
	rec(0)
	return dst
}

// exactPairsSameSlice flips exact per-pair coins for all index pairs a < b
// within one layer slice.
func (s *fastState) exactPairsSameSlice(l *fastLayer, lo, hi int) {
	for a := lo; a < hi; a++ {
		u := int(l.ids[a])
		pu := s.vs.Pos.At(u)
		wu := s.vs.W[u]
		for b := a + 1; b < hi; b++ {
			v := int(l.ids[b])
			p := s.kernel.Prob(wu, s.vs.W[v], s.space.DistPow(pu, s.vs.Pos.At(v)))
			if s.rng.Bernoulli(p) {
				s.b.AddEdge(u, v)
			}
		}
	}
}

// exactPairsCross flips exact per-pair coins for all cross pairs between two
// slices (from different layers, or different cells of one layer).
func (s *fastState) exactPairsCross(li *fastLayer, aLo, aHi int, lj *fastLayer, bLo, bHi int) {
	for a := aLo; a < aHi; a++ {
		u := int(li.ids[a])
		pu := s.vs.Pos.At(u)
		wu := s.vs.W[u]
		for b := bLo; b < bHi; b++ {
			v := int(lj.ids[b])
			p := s.kernel.Prob(wu, s.vs.W[v], s.space.DistPow(pu, s.vs.Pos.At(v)))
			if s.rng.Bernoulli(p) {
				s.b.AddEdge(u, v)
			}
		}
	}
}

// skipSampling visits each cross pair independently with probability pbar
// via geometric skipping, then accepts with the exact kernel probability
// divided by pbar.
func (s *fastState) skipSampling(li *fastLayer, aLo, aHi int, lj *fastLayer, bLo, bHi int, pbar float64) {
	na := aHi - aLo
	nb := bHi - bLo
	m := na * nb
	idx := s.rng.GeometricSkip(pbar)
	for idx < m {
		u := int(li.ids[aLo+idx/nb])
		v := int(lj.ids[bLo+idx%nb])
		p := s.kernel.Prob(s.vs.W[u], s.vs.W[v], s.space.DistPow(s.vs.Pos.At(u), s.vs.Pos.At(v)))
		if p > 0 && s.rng.Bernoulli(p/pbar) {
			s.b.AddEdge(u, v)
		}
		idx += 1 + s.rng.GeometricSkip(pbar)
	}
}

// ipow computes x^k for small non-negative integer k.
func ipow(x float64, k int) float64 {
	r := 1.0
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}
