package girg_test

import (
	"fmt"

	"repro/internal/girg"
)

// ExampleGenerate samples a small GIRG and reports its size.
func ExampleGenerate() {
	p := girg.DefaultParams(1000)
	p.FixedN = true
	g, err := girg.Generate(p, 42, girg.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("vertices:", g.N())
	fmt.Println("has edges:", g.M() > 0)
	// Output:
	// vertices: 1000
	// has edges: true
}

// ExampleGenerate_planted fixes the source and target of the theorems: two
// low-weight vertices far apart on the torus occupy ids 0 and 1.
func ExampleGenerate_planted() {
	p := girg.DefaultParams(500)
	p.FixedN = true
	g, err := girg.Generate(p, 7, girg.Options{
		Planted: []girg.Plant{
			{Pos: []float64{0.1, 0.1}, W: 1},
			{Pos: []float64{0.6, 0.6}, W: 1},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("w_s:", g.Weight(0))
	fmt.Println("x_t:", g.Pos(1)[0], g.Pos(1)[1])
	// Output:
	// w_s: 1
	// x_t: 0.6 0.6
}

// ExampleLambdaForDegree calibrates the kernel prefactor to a target
// average degree.
func ExampleLambdaForDegree() {
	p := girg.DefaultParams(100000)
	lam, err := girg.LambdaForDegree(p, 10)
	if err != nil {
		fmt.Println(err)
		return
	}
	p.Lambda = lam
	fmt.Printf("expected degree: %.1f\n", girg.ExpectedDegree(p))
	// Output:
	// expected degree: 10.0
}
