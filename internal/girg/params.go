// Package girg implements Geometric Inhomogeneous Random Graphs, the network
// model of Section 2.1 of the paper: vertices are a Poisson point process of
// intensity n on the torus T^d, each vertex draws a power-law weight with
// exponent beta in (2,3) and minimum wmin, and two vertices connect
// independently with probability
//
//	p(u,v) = min{1, lambda * ( w_u w_v / (w_min n ||x_u - x_v||^d) )^alpha }
//
// for alpha < infinity (condition (EP1)), or with the hard threshold kernel
//
//	p(u,v) = 1 iff ||x_u - x_v||^d <= lambda * w_u w_v / (w_min n)
//
// for alpha = infinity (condition (EP2)). With lambda >= 1 the soft kernel
// saturates at 1 for close pairs, which is exactly condition (EP3) with
// c1 = lambda^(1/alpha); Theorem 3.2 assumes this.
//
// Two edge samplers are provided: a quadratic-time reference (NaiveSampler)
// and an expected-linear-time layered sampler (FastSampler) in the style of
// Bringmann–Keusch–Lengler. They draw from the same distribution and are
// cross-validated in the tests.
package girg

import (
	"fmt"
	"math"

	"repro/internal/torus"
	"repro/internal/xrand"
)

// Params are the free parameters of the GIRG model (Section 2.1). The zero
// value is not valid; start from DefaultParams.
type Params struct {
	// N is the intensity of the Poisson point process, i.e. the expected
	// number of vertices.
	N float64
	// Dim is the dimension d of the torus.
	Dim int
	// Beta is the power-law exponent of the weight distribution; the paper
	// requires 2 < Beta < 3 (we accept any Beta > 2 and let experiments
	// explore the boundary).
	Beta float64
	// Alpha is the long-range decay parameter (> 1). Use math.Inf(1) for
	// the threshold model (EP2).
	Alpha float64
	// WMin is the minimum vertex weight.
	WMin float64
	// Lambda is the kernel prefactor (the Theta-constant of (EP1)/(EP2)).
	// Lambda >= 1 guarantees (EP3).
	Lambda float64
	// WMax optionally truncates the weight distribution; 0 means
	// unbounded.
	WMax float64
	// FixedN, when true, places exactly round(N) vertices instead of
	// Poisson(N) many. The paper's proofs use the Poisson version; the
	// fixed version matches most experimental papers.
	FixedN bool
	// Norm selects the torus metric (the paper's results hold for any
	// norm; default is the max norm of Section 2.1).
	Norm torus.Norm
	// Geometry selects the ground space: the cyclic torus (default) or the
	// cube [0,1]^d, both valid per Section 2.1.
	Geometry torus.Geometry
}

// DefaultParams returns the parameter set used as the base point of the
// experiments: a 2-dimensional GIRG with beta = 2.5, alpha = 2, wmin = 1.
func DefaultParams(n float64) Params {
	return Params{
		N:      n,
		Dim:    2,
		Beta:   2.5,
		Alpha:  2,
		WMin:   1,
		Lambda: 1,
	}
}

// Threshold reports whether the parameters select the alpha = infinity
// threshold kernel.
func (p Params) Threshold() bool { return math.IsInf(p.Alpha, 1) }

// Validate checks the parameters against the model's requirements.
func (p Params) Validate() error {
	if !(p.N >= 1) {
		return fmt.Errorf("girg: intensity N = %v, need >= 1", p.N)
	}
	if p.Dim < 1 || p.Dim > torus.MaxDim {
		return fmt.Errorf("girg: dimension %d out of range [1, %d]", p.Dim, torus.MaxDim)
	}
	if !(p.Beta > 2) {
		return fmt.Errorf("girg: beta = %v, need > 2", p.Beta)
	}
	if !(p.Alpha > 1) { // Inf passes
		return fmt.Errorf("girg: alpha = %v, need > 1 (or +Inf)", p.Alpha)
	}
	if !(p.WMin > 0) {
		return fmt.Errorf("girg: wmin = %v, need > 0", p.WMin)
	}
	if !(p.Lambda > 0) {
		return fmt.Errorf("girg: lambda = %v, need > 0", p.Lambda)
	}
	if p.WMax != 0 && p.WMax < p.WMin {
		return fmt.Errorf("girg: wmax = %v below wmin = %v", p.WMax, p.WMin)
	}
	return nil
}

// EdgeKernel abstracts the edge-probability function the samplers evaluate.
// Prob must be non-increasing in distPow and non-decreasing in each weight;
// the fast sampler relies on that monotonicity when it bounds cell pairs.
// SaturationDistPow returns the distPow scale below which Prob may be close
// to 1 for the given weight product — it only tunes the sampler's
// comparison levels (performance), never correctness.
type EdgeKernel interface {
	Prob(wu, wv, distPow float64) float64
	SaturationDistPow(wuwv float64) float64
}

// Kernel evaluates the edge-probability function of the model. It is a value
// type so samplers can keep it in registers on the hot path.
type Kernel struct {
	alpha     float64
	lambda    float64
	invWMinN  float64
	threshold bool
}

// NewKernel builds the kernel for the given parameters.
func NewKernel(p Params) Kernel {
	return Kernel{
		alpha:     p.Alpha,
		lambda:    p.Lambda,
		invWMinN:  1 / (p.WMin * p.N),
		threshold: p.Threshold(),
	}
}

// Prob returns the connection probability of two vertices with weights wu,
// wv at torus distance dist with dist^d = distPow.
func (k Kernel) Prob(wu, wv, distPow float64) float64 {
	kk := wu * wv * k.invWMinN
	if k.threshold {
		if distPow <= k.lambda*kk {
			return 1
		}
		return 0
	}
	if distPow <= 0 {
		return 1
	}
	x := k.lambda * math.Pow(kk/distPow, k.alpha)
	if x >= 1 {
		return 1
	}
	return x
}

// SaturationDistPow returns the value of dist^d at which the kernel reaches
// probability 1 for the given weight product budget wu*wv (0 for the soft
// kernel if it never saturates, which cannot happen for lambda >= 1).
func (k Kernel) SaturationDistPow(wuwv float64) float64 {
	kk := wuwv * k.invWMinN
	if k.threshold {
		return k.lambda * kk
	}
	// lambda * (kk/distPow)^alpha >= 1  <=>  distPow <= kk * lambda^(1/alpha).
	return kk * math.Pow(k.lambda, 1/k.alpha)
}

// Vertices is a sampled GIRG vertex set: positions on the torus plus
// weights. Planted vertices (with caller-chosen attributes) occupy the first
// indices.
type Vertices struct {
	Pos     *torus.Positions
	W       []float64
	Planted int // number of leading planted vertices
}

// N returns the number of vertices.
func (vs *Vertices) N() int { return len(vs.W) }

// Plant describes a vertex whose position and weight the caller fixes (the
// adversarially chosen s and t of the theorems). Weight must be >= WMin; a
// nil Pos means a uniformly random position.
type Plant struct {
	Pos []float64
	W   float64
}

// SampleVertices draws the vertex set: the planted vertices first, then
// Poisson(N) (or exactly round(N) if FixedN) random vertices with power-law
// weights.
func SampleVertices(p Params, rng *xrand.RNG, planted []Plant) (*Vertices, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	space, err := torus.NewSpaceFull(p.Dim, p.Norm, p.Geometry)
	if err != nil {
		return nil, err
	}
	nRandom := int(math.Round(p.N))
	if !p.FixedN {
		nRandom = rng.Poisson(p.N)
	}
	n := nRandom + len(planted)
	pos := torus.NewPositions(space, n)
	w := make([]float64, n)
	buf := make([]float64, p.Dim)
	for i, pl := range planted {
		if pl.W < p.WMin {
			return nil, fmt.Errorf("girg: planted vertex %d weight %v below wmin %v", i, pl.W, p.WMin)
		}
		if p.WMax != 0 && pl.W > p.WMax {
			return nil, fmt.Errorf("girg: planted vertex %d weight %v above wmax %v", i, pl.W, p.WMax)
		}
		if pl.Pos == nil {
			randomPoint(rng, buf)
			pos.Set(i, buf)
		} else {
			if len(pl.Pos) != p.Dim {
				return nil, fmt.Errorf("girg: planted vertex %d position has dim %d, want %d", i, len(pl.Pos), p.Dim)
			}
			for j, c := range pl.Pos {
				buf[j] = torus.Wrap(c)
			}
			pos.Set(i, buf)
		}
		w[i] = pl.W
	}
	for i := len(planted); i < n; i++ {
		randomPoint(rng, buf)
		pos.Set(i, buf)
		if p.WMax != 0 {
			w[i] = rng.PowerLawTruncated(p.WMin, p.WMax, p.Beta)
		} else {
			w[i] = rng.PowerLaw(p.WMin, p.Beta)
		}
	}
	return &Vertices{Pos: pos, W: w, Planted: len(planted)}, nil
}

func randomPoint(rng *xrand.RNG, buf []float64) {
	for i := range buf {
		buf[i] = rng.Float64()
	}
}
