package dist

import "math"

// Packet modes of the Algorithm 2 program.
const (
	modeExplore uint8 = iota
	modeBacktrack
)

// GreedyProgram is Algorithm 1 as a node program: deliver if this node is
// the target, otherwise forward to the neighbor with the best objective if
// it beats the current node, else drop. All objective evaluations use only
// the neighbors' advertised addresses and the target address on the packet.
type GreedyProgram struct{}

// OnPacket implements Program.
func (GreedyProgram) OnPacket(view *View, _ *State, pkt *Packet) Outcome {
	if view.Self == pkt.Target {
		return Outcome{Deliver: true}
	}
	best, bestScore := bestNeighbor(view, pkt)
	selfScore := view.Phi(view.Addr, pkt.TargetAddr, pkt.Target, view.Self)
	if best >= 0 && betterScore(bestScore, selfScore, best, view.Self) {
		return Outcome{Forward: best}
	}
	return Outcome{Drop: true}
}

// PhiDFSProgram is the paper's Algorithm 2 as a node program with the
// constant-size per-node State cell and the three packet fields
// (best_seen_objective, Phi, last_visited_vertex). Local transitions that
// the pseudocode performs without moving the message (the reset re-entry)
// loop inside OnPacket; every Forward is one message transmission to a
// direct neighbor — the simulator proves by construction that no step needs
// non-local knowledge.
type PhiDFSProgram struct{}

// OnPacket implements Program.
func (PhiDFSProgram) OnPacket(view *View, state *State, pkt *Packet) Outcome {
	for {
		switch pkt.Mode {
		case modeExplore:
			if view.Self == pkt.Target {
				return Outcome{Deliver: true}
			}
			// Already visited in the current Phi-DFS: step back
			// immediately (pseudocode lines 8-9).
			if state.Initialized && state.Phi == pkt.Phi {
				pkt.Mode = modeBacktrack
				if pkt.LastVisited == view.Self {
					continue
				}
				return Outcome{Forward: pkt.LastVisited}
			}
			best, bestScore := bestNeighbor(view, pkt)
			selfScore := view.Phi(view.Addr, pkt.TargetAddr, pkt.Target, view.Self)
			// Lines 11-12: potentially start a new DFS at this node.
			if selfScore > pkt.BestSeen {
				pkt.BestSeen = selfScore
				if best >= 0 && bestScore >= selfScore {
					state.StartedNewDFS = true
					state.PreviousPhi = pkt.Phi
					pkt.Phi = selfScore
				}
			}
			// Line 13: INIT_VERTEX.
			state.Initialized = true
			state.Phi = pkt.Phi
			state.Parent = int32(pkt.LastVisited)
			// Lines 14-17.
			if best >= 0 && bestScore >= pkt.Phi {
				return Outcome{Forward: best}
			}
			pkt.Mode = modeBacktrack
			if pkt.LastVisited == view.Self {
				continue
			}
			return Outcome{Forward: pkt.LastVisited}

		case modeBacktrack:
			// Line 19: scan for the next unexplored child below the
			// cursor phi(last visited).
			cursor := phiOfID(view, pkt, pkt.LastVisited)
			if u := nextChild(view, pkt, int(state.Parent), cursor); u >= 0 {
				pkt.Mode = modeExplore
				return Outcome{Forward: u}
			}
			if state.StartedNewDFS {
				// Lines 24-27: the DFS rooted here failed; resume the
				// previous one by rescanning the children (see the
				// documented deviation in internal/route/phidfs.go).
				state.StartedNewDFS = false
				pkt.Phi = state.PreviousPhi
				state.Phi = state.PreviousPhi
				pkt.LastVisited = int(state.Parent)
				if best, bestScore := bestNeighbor(view, pkt); best >= 0 && bestScore >= pkt.Phi {
					pkt.Mode = modeExplore
					return Outcome{Forward: best}
				}
				if int(state.Parent) == view.Self {
					return Outcome{Drop: true}
				}
				return Outcome{Forward: int(state.Parent)}
			}
			if int(state.Parent) == view.Self {
				// Bottom-level DFS exhausted the component.
				return Outcome{Drop: true}
			}
			return Outcome{Forward: int(state.Parent)}
		default:
			return Outcome{Drop: true}
		}
	}
}

// bestNeighbor returns the neighbor id with the maximal objective and its
// score, or (-1, -Inf) for an isolated node. Tie-breaking matches package
// route: higher score first, then lower id.
func bestNeighbor(view *View, pkt *Packet) (int, float64) {
	best := -1
	bestScore := math.Inf(-1)
	for i, id32 := range view.NeighborIDs {
		id := int(id32)
		sc := view.Phi(view.NeighborAddrs[i], pkt.TargetAddr, pkt.Target, id)
		if best == -1 || betterScore(sc, bestScore, id, best) {
			best, bestScore = id, sc
		}
	}
	return best, bestScore
}

// betterScore mirrors route's total order on (score, id).
func betterScore(scoreA, scoreB float64, a, b int) bool {
	if scoreA != scoreB {
		return scoreA > scoreB
	}
	return a < b
}

// phiOfID evaluates the objective of a node the active node can see: itself
// or one of its direct neighbors.
func phiOfID(view *View, pkt *Packet, id int) float64 {
	if id == view.Self {
		return view.Phi(view.Addr, pkt.TargetAddr, pkt.Target, id)
	}
	for i, nid := range view.NeighborIDs {
		if int(nid) == id {
			return view.Phi(view.NeighborAddrs[i], pkt.TargetAddr, pkt.Target, id)
		}
	}
	// Unreachable for well-formed executions: the last visited vertex is
	// always the node itself or a direct neighbor.
	return math.Inf(-1)
}

// nextChild returns the neighbor with the largest objective strictly below
// cursor, at least pkt.Phi, excluding the parent; -1 if none.
func nextChild(view *View, pkt *Packet, parent int, cursor float64) int {
	best := -1
	var bestScore float64
	for i, id32 := range view.NeighborIDs {
		id := int(id32)
		if id == parent {
			continue
		}
		sc := view.Phi(view.NeighborAddrs[i], pkt.TargetAddr, pkt.Target, id)
		if sc < pkt.Phi || sc >= cursor {
			continue
		}
		if best == -1 || betterScore(sc, bestScore, id, best) {
			best, bestScore = id, sc
		}
	}
	return best
}
