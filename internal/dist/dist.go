// Package dist executes the routing protocols as genuinely distributed node
// programs. The paper stresses that greedy routing and its patching variants
// are local: "each node only needs to know the positions and weights of its
// direct neighbors, and the geometric position of t (which we assume to be
// part of the message)", and "at each time only one vertex is active".
//
// This package enforces that claim structurally. A node program receives a
// View that exposes only the node's own address, its direct neighbors'
// advertised addresses and the model constants — there is no way to touch
// the rest of the topology — plus a constant-size per-node state cell and
// the in-flight packet. The simulator delivers the packet to one node at a
// time and counts transmissions. Conformance tests verify that the
// distributed executions reproduce the centralized implementations of
// package route hop for hop.
package dist

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/torus"
)

// Address is what a node advertises to its neighbors: its model weight and
// geometric position (the (x_v, w_v) address of Section 2.2).
type Address struct {
	W   float64
	Pos []float64
}

// View is the strictly local knowledge of the active node. It is rebuilt by
// the simulator for each activation; programs must not retain it.
type View struct {
	// Self is the active node's id and Addr its own address.
	Self int
	Addr Address
	// NeighborIDs and NeighborAddrs list the direct neighbors (parallel
	// slices).
	NeighborIDs   []int32
	NeighborAddrs []Address
	// Space, Intensity and WMin are the public model constants every
	// participant of the protocol knows (they parameterize the objective,
	// like knowing "the formula" in Milgram's experiment).
	Space     torus.Space
	Intensity float64
	WMin      float64
}

// Phi evaluates the standard objective of an address toward the packet's
// target address: w / (wmin * n * dist^d). The target itself scores +Inf.
func (v *View) Phi(a Address, target Address, targetID, id int) float64 {
	if id == targetID {
		return math.Inf(1)
	}
	return a.W / (v.WMin * v.Intensity * v.Space.DistPow(a.Pos, target.Pos))
}

// Packet is the message being routed. Its size is constant: protocol
// scalars plus the target's address.
type Packet struct {
	// Target is the destination node id, TargetAddr its address (written
	// on the envelope, as in the paper).
	Target     int
	TargetAddr Address
	// Mode distinguishes protocol phases (e.g. explore vs backtrack for
	// Algorithm 2).
	Mode uint8
	// BestSeen, Phi and LastVisited are Algorithm 2's message fields.
	BestSeen    float64
	Phi         float64
	LastVisited int
	// Extra carries protocol-specific message memory for protocols that
	// store their history in the message (SMTP-style, Section 5); nil for
	// the constant-size protocols.
	Extra interface{}
}

// State is the constant-size per-node memory cell of Algorithm 2.
type State struct {
	Initialized   bool
	Phi           float64
	Parent        int32
	StartedNewDFS bool
	PreviousPhi   float64
}

// Outcome is what a node program decides after processing the packet.
type Outcome struct {
	// Deliver reports the packet reached its target at this node.
	Deliver bool
	// Drop reports the protocol gives up at this node.
	Drop bool
	// Forward is the neighbor to transmit to next (must be a direct
	// neighbor; the simulator enforces this).
	Forward int
}

// Program is a distributed routing protocol: a pure function of the local
// view, the local state cell and the packet.
type Program interface {
	// OnPacket processes one activation. It may mutate state and packet.
	OnPacket(view *View, state *State, pkt *Packet) Outcome
}

// Result of a distributed routing run.
type Result struct {
	Delivered bool
	// Hops is the number of packet transmissions.
	Hops int
	// Path is the sequence of activated nodes (starting at the source).
	Path []int
}

// Simulator runs single-packet protocols over a generated graph.
type Simulator struct {
	g      *graph.Graph
	states []State
	view   View
	addrs  []Address // scratch reused across activations
}

// NewSimulator prepares a simulator for the given graph (which must carry
// geometry and weights, as all model graphs do).
func NewSimulator(g *graph.Graph) (*Simulator, error) {
	if g.Positions() == nil {
		return nil, fmt.Errorf("dist: graph has no geometry")
	}
	return &Simulator{
		g:      g,
		states: make([]State, g.N()),
		view: View{
			Space:     g.Space(),
			Intensity: g.Intensity(),
			WMin:      g.WMin(),
		},
	}, nil
}

// Reset clears all per-node state (a new routing episode).
func (s *Simulator) Reset() {
	for i := range s.states {
		s.states[i] = State{}
	}
}

// address builds the advertised address of node v.
func (s *Simulator) address(v int) Address {
	return Address{W: s.g.Weight(v), Pos: s.g.Pos(v)}
}

// Run routes one packet from src to dst under the program, for at most
// maxHops transmissions (0 means 64*n + 256).
func (s *Simulator) Run(p Program, src, dst, maxHops int) (Result, error) {
	if maxHops == 0 {
		maxHops = 64*s.g.N() + 256
	}
	s.Reset()
	pkt := Packet{
		Target:      dst,
		TargetAddr:  s.address(dst),
		BestSeen:    math.Inf(-1),
		Phi:         math.Inf(-1),
		LastVisited: src,
	}
	res := Result{Path: []int{src}}
	cur := src
	for {
		s.activate(cur)
		out := p.OnPacket(&s.view, &s.states[cur], &pkt)
		switch {
		case out.Deliver:
			if cur != dst {
				return res, fmt.Errorf("dist: program delivered at %d, target %d", cur, dst)
			}
			res.Delivered = true
			return res, nil
		case out.Drop:
			return res, nil
		default:
			if !s.isNeighbor(cur, out.Forward) {
				return res, fmt.Errorf("dist: node %d forwarded to non-neighbor %d", cur, out.Forward)
			}
			pkt.LastVisited = cur
			cur = out.Forward
			res.Hops++
			res.Path = append(res.Path, cur)
			if res.Hops > maxHops {
				return res, nil
			}
		}
	}
}

// activate rebuilds the local view for node v.
func (s *Simulator) activate(v int) {
	nbrs := s.g.Neighbors(v)
	if cap(s.addrs) < len(nbrs) {
		s.addrs = make([]Address, len(nbrs))
	}
	s.addrs = s.addrs[:len(nbrs)]
	for i, u := range nbrs {
		s.addrs[i] = s.address(int(u))
	}
	s.view.Self = v
	s.view.Addr = s.address(v)
	s.view.NeighborIDs = nbrs
	s.view.NeighborAddrs = s.addrs
}

func (s *Simulator) isNeighbor(v, u int) bool {
	for _, w := range s.g.Neighbors(v) {
		if int(w) == u {
			return true
		}
	}
	return false
}
