package dist

import (
	"container/heap"
)

// HistoryProgram is the message-history patching protocol of Section 5 as a
// node program: all protocol memory travels with the packet ("we may simply
// store the list of visited vertices in the message, and for each vertex we
// additionally store the objective of the best unexplored incident edge" —
// the SMTP analogy), and the nodes keep no state at all. The message
// records, per visited vertex, the neighbor ids it saw there; backtracking
// walks are then planned over that recorded map, so every transmission
// still goes to a direct neighbor of the current node.
//
// The execution is conformant with the centralized route.HistoryPatch
// transmission for transmission (same frontier ordering, same walk BFS).
type HistoryProgram struct{}

// historyMemory is the state carried in Packet.Extra.
type historyMemory struct {
	visited  map[int]bool
	adj      map[int][]int32 // neighbor ids recorded at each visited vertex
	frontier histFrontier
	plan     []int // remaining hops of a planned walk to a frontier edge
}

type histEdge struct {
	score float64
	to    int
	from  int
}

type histFrontier []histEdge

func (h histFrontier) Len() int { return len(h) }
func (h histFrontier) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].to < h[j].to
}
func (h histFrontier) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *histFrontier) Push(x interface{}) { *h = append(*h, x.(histEdge)) }
func (h *histFrontier) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// OnPacket implements Program.
func (HistoryProgram) OnPacket(view *View, _ *State, pkt *Packet) Outcome {
	if view.Self == pkt.Target {
		return Outcome{Deliver: true}
	}
	mem, _ := pkt.Extra.(*historyMemory)
	if mem == nil {
		mem = &historyMemory{
			visited: map[int]bool{},
			adj:     map[int][]int32{},
		}
		pkt.Extra = mem
	}
	v := view.Self
	if !mem.visited[v] {
		mem.visited[v] = true
		nbrs := make([]int32, len(view.NeighborIDs))
		copy(nbrs, view.NeighborIDs)
		mem.adj[v] = nbrs
		for i, id32 := range view.NeighborIDs {
			u := int(id32)
			if !mem.visited[u] {
				score := view.Phi(view.NeighborAddrs[i], pkt.TargetAddr, pkt.Target, u)
				heap.Push(&mem.frontier, histEdge{score: score, to: u, from: v})
			}
		}
	}
	// Mid-walk: keep following the plan.
	if len(mem.plan) > 0 {
		next := mem.plan[0]
		mem.plan = mem.plan[1:]
		return Outcome{Forward: next}
	}
	// Greedy step if a neighbor improves on the current vertex.
	best, bestScore := bestNeighbor(view, pkt)
	selfScore := view.Phi(view.Addr, pkt.TargetAddr, pkt.Target, v)
	if best >= 0 && betterScore(bestScore, selfScore, best, v) {
		return Outcome{Forward: best}
	}
	// Local optimum: pop the globally best unexplored edge (lazy deletion).
	for mem.frontier.Len() > 0 {
		e := heap.Pop(&mem.frontier).(histEdge)
		if mem.visited[e.to] {
			continue
		}
		// Plan a shortest walk within the visited set from here to e.from,
		// then across the unexplored edge.
		walk := mem.walkVisited(v, e.from)
		mem.plan = append(walk, e.to)
		next := mem.plan[0]
		mem.plan = mem.plan[1:]
		return Outcome{Forward: next}
	}
	return Outcome{Drop: true} // component exhausted
}

// walkVisited returns the vertices after `from` on a shortest path from
// `from` to `to` within the message's visited set, using the recorded
// adjacency (identical BFS order to the centralized implementation).
func (m *historyMemory) walkVisited(from, to int) []int {
	if from == to {
		return nil
	}
	prev := map[int]int{from: from}
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == to {
			break
		}
		for _, u32 := range m.adj[v] {
			u := int(u32)
			if !m.visited[u] {
				continue
			}
			if _, seen := prev[u]; !seen {
				prev[u] = v
				queue = append(queue, u)
			}
		}
	}
	if _, ok := prev[to]; !ok {
		return []int{to} // defensive; the visited set is connected
	}
	var rev []int
	for v := to; v != from; v = prev[v] {
		rev = append(rev, v)
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
