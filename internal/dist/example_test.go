package dist_test

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/girg"
	"repro/internal/graph"
)

// Example runs the paper's Algorithm 2 as a genuinely distributed node
// program: every decision uses only the active node's local view, and the
// simulator rejects any transmission to a non-neighbor.
func Example() {
	p := girg.DefaultParams(2000)
	p.Lambda = 0.02
	p.FixedN = true
	g, err := girg.Generate(p, 99, girg.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	sim, err := dist.NewSimulator(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	giant := graph.GiantComponent(g)
	s, t := giant[0], giant[len(giant)-1]
	res, err := sim.Run(dist.PhiDFSProgram{}, s, t, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delivered:", res.Delivered)
	fmt.Println("every hop local:", res.Hops == len(res.Path)-1)
	// Output:
	// delivered: true
	// every hop local: true
}
