package dist

import (
	"math"
	"testing"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

func girgGraph(t testing.TB, n float64, seed uint64) *graph.Graph {
	t.Helper()
	p := girg.DefaultParams(n)
	p.Lambda = 0.05 // sparse enough that greedy fails sometimes
	p.FixedN = true
	g, err := girg.Generate(p, seed, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewSimulatorRequiresGeometry(t *testing.T) {
	b, _ := graph.NewBuilder(2, nil, nil, 2, 1)
	b.AddEdge(0, 1)
	if _, err := NewSimulator(b.Finish()); err == nil {
		t.Fatal("geometry-less graph accepted")
	}
}

func TestViewPhiMatchesRouteObjective(t *testing.T) {
	g := girgGraph(t, 500, 1)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	tgt := 7
	obj := route.NewStandard(g, tgt)
	pkt := Packet{Target: tgt, TargetAddr: sim.address(tgt)}
	for v := 0; v < 50; v++ {
		sim.activate(v)
		got := sim.view.Phi(sim.view.Addr, pkt.TargetAddr, pkt.Target, v)
		want := obj.Score(v)
		if v == tgt {
			if !math.IsInf(got, 1) {
				t.Fatalf("target phi not +Inf")
			}
			continue
		}
		if math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("phi(%d): distributed %v vs centralized %v", v, got, want)
		}
	}
}

// TestGreedyConformance: the distributed greedy execution must reproduce the
// centralized one transmission for transmission, including the give-up
// point.
func TestGreedyConformance(t *testing.T) {
	g := girgGraph(t, 2000, 2)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	agree, checked := 0, 0
	for i := 0; i < 300; i++ {
		s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
		if s == tgt {
			continue
		}
		want := route.Greedy(g, route.NewStandard(g, tgt), s)
		got, err := sim.Run(GreedyProgram{}, s, tgt, 0)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		if got.Delivered != want.Success {
			t.Fatalf("pair %d->%d: delivered %v vs centralized %v", s, tgt, got.Delivered, want.Success)
		}
		if len(got.Path) != len(want.Path) {
			t.Fatalf("pair %d->%d: path lengths %d vs %d", s, tgt, len(got.Path), len(want.Path))
		}
		for j := range got.Path {
			if got.Path[j] != want.Path[j] {
				t.Fatalf("pair %d->%d: paths diverge at step %d: %v vs %v",
					s, tgt, j, got.Path, want.Path)
			}
		}
		agree++
	}
	if checked == 0 || agree != checked {
		t.Fatalf("agree %d of %d", agree, checked)
	}
}

// TestPhiDFSConformance: the distributed Algorithm 2 must reproduce the
// centralized implementation's transmissions exactly.
func TestPhiDFSConformance(t *testing.T) {
	g := girgGraph(t, 1500, 4)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for i := 0; i < 150; i++ {
		s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
		if s == tgt {
			continue
		}
		want := route.PhiDFS{}.Route(g, route.NewStandard(g, tgt), s)
		got, err := sim.Run(PhiDFSProgram{}, s, tgt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Delivered != want.Success {
			t.Fatalf("pair %d->%d: delivered %v vs %v (hops %d vs %d)",
				s, tgt, got.Delivered, want.Success, got.Hops, want.Moves)
		}
		if len(got.Path) != len(want.Path) {
			t.Fatalf("pair %d->%d: path lengths %d vs %d", s, tgt, len(got.Path), len(want.Path))
		}
		for j := range got.Path {
			if got.Path[j] != want.Path[j] {
				t.Fatalf("pair %d->%d: transmissions diverge at %d", s, tgt, j)
			}
		}
	}
}

// TestPhiDFSDistributedAlwaysDeliversInComponent: the locality-enforced
// Algorithm 2 still has the Theorem 3.4 guarantee.
func TestPhiDFSDistributedAlwaysDeliversInComponent(t *testing.T) {
	g := girgGraph(t, 1200, 6)
	giant := graph.GiantComponent(g)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	for i := 0; i < 60; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		res, err := sim.Run(PhiDFSProgram{}, s, tgt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatalf("distributed phi-dfs failed within the giant (%d -> %d)", s, tgt)
		}
	}
}

// badProgram tries to forward to a non-neighbor; the simulator must refuse.
type badProgram struct{}

func (badProgram) OnPacket(view *View, _ *State, pkt *Packet) Outcome {
	// Forward to some node that is not adjacent (the target works whenever
	// it is not a neighbor).
	return Outcome{Forward: pkt.Target}
}

func TestSimulatorEnforcesLocality(t *testing.T) {
	g := girgGraph(t, 500, 8)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	// Find a non-adjacent pair.
	var s, tgt int = -1, -1
	for u := 0; u < g.N() && s < 0; u++ {
		for v := 0; v < g.N(); v++ {
			if u != v && !g.HasEdge(u, v) {
				s, tgt = u, v
				break
			}
		}
	}
	if s < 0 {
		t.Skip("graph is complete")
	}
	if _, err := sim.Run(badProgram{}, s, tgt, 0); err == nil {
		t.Fatal("non-neighbor forward accepted")
	}
}

// lyingProgram claims delivery at the wrong node.
type lyingProgram struct{}

func (lyingProgram) OnPacket(view *View, _ *State, pkt *Packet) Outcome {
	return Outcome{Deliver: true}
}

func TestSimulatorChecksDelivery(t *testing.T) {
	g := girgGraph(t, 300, 9)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(lyingProgram{}, 0, 1, 0); err == nil {
		t.Fatal("false delivery accepted")
	}
}

// loopProgram bounces between two neighbors forever.
type loopProgram struct{}

func (loopProgram) OnPacket(view *View, _ *State, pkt *Packet) Outcome {
	return Outcome{Forward: int(view.NeighborIDs[0])}
}

func TestSimulatorHopCap(t *testing.T) {
	g := girgGraph(t, 300, 10)
	// Find a vertex with a neighbor.
	s := -1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 {
			s = v
			break
		}
	}
	if s < 0 {
		t.Skip("empty graph")
	}
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	tgt := (s + 1) % g.N()
	res, err := sim.Run(loopProgram{}, s, tgt, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("loop program delivered")
	}
	if res.Hops < 50 || res.Hops > 51 {
		t.Fatalf("hop cap not applied: %d", res.Hops)
	}
}

func TestRunResetsState(t *testing.T) {
	// Two consecutive runs must not leak per-node DFS state.
	g := girgGraph(t, 800, 11)
	giant := graph.GiantComponent(g)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	s, tgt := giant[0], giant[len(giant)-1]
	r1, err := sim.Run(PhiDFSProgram{}, s, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(PhiDFSProgram{}, s, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hops != r2.Hops || r1.Delivered != r2.Delivered {
		t.Fatalf("state leaked across runs: %+v vs %+v", r1, r2)
	}
}

func BenchmarkDistributedGreedy(b *testing.B) {
	g := girgGraph(b, 5000, 12)
	giant := graph.GiantComponent(g)
	sim, err := NewSimulator(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		if _, err := sim.Run(GreedyProgram{}, s, tgt, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHistoryConformance: the SMTP-style message-memory program must
// reproduce the centralized HistoryPatch transmission for transmission.
func TestHistoryConformance(t *testing.T) {
	g := girgGraph(t, 1500, 21)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(22)
	for i := 0; i < 150; i++ {
		s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
		if s == tgt {
			continue
		}
		want := route.HistoryPatch{}.Route(g, route.NewStandard(g, tgt), s)
		got, err := sim.Run(HistoryProgram{}, s, tgt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Delivered != want.Success {
			t.Fatalf("pair %d->%d: delivered %v vs %v", s, tgt, got.Delivered, want.Success)
		}
		if len(got.Path) != len(want.Path) {
			t.Fatalf("pair %d->%d: path lengths %d vs %d (%v vs %v)",
				s, tgt, len(got.Path), len(want.Path), got.Path, want.Path)
		}
		for j := range got.Path {
			if got.Path[j] != want.Path[j] {
				t.Fatalf("pair %d->%d: transmissions diverge at %d", s, tgt, j)
			}
		}
	}
}

// TestHistoryProgramStateless: the per-node state cells must remain zero —
// all memory lives in the message.
func TestHistoryProgramStateless(t *testing.T) {
	g := girgGraph(t, 800, 23)
	sim, err := NewSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	giant := graph.GiantComponent(g)
	if _, err := sim.Run(HistoryProgram{}, giant[0], giant[len(giant)-1], 0); err != nil {
		t.Fatal(err)
	}
	for v, st := range sim.states {
		if st != (State{}) {
			t.Fatalf("node %d acquired state %+v under the stateless protocol", v, st)
		}
	}
}
