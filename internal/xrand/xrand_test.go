package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// The child stream must not replay the parent stream.
	parentNext := r.Uint64()
	childNext := child.Uint64()
	if parentNext == childNext {
		t.Fatal("split child replays parent stream")
	}
	// Splitting is deterministic given the parent state.
	r2 := New(7)
	child2 := r2.Split()
	if child.Uint64() == 0 && child2.Uint64() == 0 {
		t.Skip("degenerate")
	}
	c1, c2 := New(7).Split(), New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNUniform(t *testing.T) {
	r := New(9)
	const n, trials = 10, 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.IntN(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestBernoulli(t *testing.T) {
	r := New(13)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", p)
	}
}

func TestPowerLawSupport(t *testing.T) {
	r := New(17)
	const wmin, beta = 1.5, 2.5
	for i := 0; i < 100000; i++ {
		w := r.PowerLaw(wmin, beta)
		if w < wmin {
			t.Fatalf("PowerLaw sample %v below wmin %v", w, wmin)
		}
	}
}

func TestPowerLawTail(t *testing.T) {
	// P(W >= w) = (wmin/w)^(beta-1); check at a few thresholds.
	r := New(19)
	const wmin, beta = 1.0, 2.5
	const n = 400000
	thresholds := []float64{2, 4, 8, 16}
	counts := make([]int, len(thresholds))
	for i := 0; i < n; i++ {
		w := r.PowerLaw(wmin, beta)
		for j, th := range thresholds {
			if w >= th {
				counts[j]++
			}
		}
	}
	for j, th := range thresholds {
		want := math.Pow(wmin/th, beta-1)
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 4*math.Sqrt(want*(1-want)/n)+0.002 {
			t.Errorf("tail P(W>=%v): got %v want %v", th, got, want)
		}
	}
}

func TestPowerLawMean(t *testing.T) {
	// E[W] = wmin*(beta-1)/(beta-2) for beta > 2.
	r := New(23)
	const wmin, beta = 1.0, 2.8
	const n = 2000000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.PowerLaw(wmin, beta)
	}
	got := sum / n
	want := wmin * (beta - 1) / (beta - 2)
	// The mean estimator of a heavy-tailed law converges slowly; allow 5%.
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("power-law mean: got %v want %v", got, want)
	}
}

func TestPowerLawTruncated(t *testing.T) {
	r := New(29)
	const wmin, wmax, beta = 1.0, 10.0, 2.5
	for i := 0; i < 100000; i++ {
		w := r.PowerLawTruncated(wmin, wmax, beta)
		if w < wmin || w > wmax {
			t.Fatalf("truncated sample %v outside [%v, %v]", w, wmin, wmax)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(31)
	for _, lambda := range []float64{0.5, 3, 20, 50, 500} {
		const n = 100000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			k := float64(r.Poisson(lambda))
			sum += k
			sumsq += k * k
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		tol := 6 * math.Sqrt(lambda/n)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%v) mean %v (tol %v)", lambda, mean, tol)
		}
		if math.Abs(variance-lambda)/lambda > 0.1 {
			t.Errorf("Poisson(%v) variance %v", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(37)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestPoissonPTRSMatchesKnuthDistribution(t *testing.T) {
	// At lambda near the method switch both should agree in distribution;
	// compare the empirical CDF at the mean.
	const lambda = 30.0
	const n = 200000
	below := func(sample func() int) float64 {
		c := 0
		for i := 0; i < n; i++ {
			if sample() <= int(lambda) {
				c++
			}
		}
		return float64(c) / n
	}
	rk := New(41)
	rp := New(43)
	pk := below(func() int { return rk.poissonKnuth(lambda) })
	pp := below(func() int { return rp.poissonPTRS(lambda) })
	if math.Abs(pk-pp) > 0.01 {
		t.Fatalf("Knuth vs PTRS CDF at mean: %v vs %v", pk, pp)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(47)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {100, 0.03}, {1000, 0.7}, {100000, 0.001}, {500, 0.9},
	}
	for _, tc := range cases {
		const trials = 30000
		sum := 0.0
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(float64(tc.n) * tc.p * (1 - tc.p))
		if math.Abs(mean-want) > 6*sd/math.Sqrt(trials)+1e-9 {
			t.Errorf("Binomial(%d,%v) mean %v want %v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(53)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0,p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n,0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n,1) != n")
	}
}

func TestGeometricSkipDistribution(t *testing.T) {
	r := New(59)
	const p = 0.2
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.GeometricSkip(p))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("GeometricSkip(%v) mean %v want %v", p, mean, want)
	}
}

func TestGeometricSkipEdges(t *testing.T) {
	r := New(61)
	if r.GeometricSkip(1) != 0 {
		t.Fatal("GeometricSkip(1) must be 0")
	}
	if r.GeometricSkip(0) < 1<<62 {
		t.Fatal("GeometricSkip(0) must be effectively infinite")
	}
}

func TestGeometricSkipMatchesBernoulliScan(t *testing.T) {
	// Using skips to visit candidates must hit each index with probability p.
	const p = 0.05
	const m = 200 // candidates
	const trials = 50000
	r := New(67)
	hits := make([]int, m)
	for tr := 0; tr < trials; tr++ {
		i := r.GeometricSkip(p)
		for i < m {
			hits[i]++
			i += 1 + r.GeometricSkip(p)
		}
	}
	for idx, h := range hits {
		got := float64(h) / trials
		if math.Abs(got-p) > 5*math.Sqrt(p*(1-p)/trials) {
			t.Fatalf("index %d hit rate %v want %v", idx, got, p)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(71)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("Exp mean %v", sum/n)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(73)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("Normal moments mean=%v var=%v", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(79)
	out := make([]int, 100)
	r.Perm(out)
	seen := make([]bool, 100)
	for _, v := range out {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestSampleDistinctSorted(t *testing.T) {
	r := New(83)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.IntN(50)
		k := r.IntN(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) returned %d values", n, k, len(s))
		}
		for i, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("sample value %d out of range", v)
			}
			if i > 0 && s[i-1] >= v {
				t.Fatalf("sample not strictly increasing: %v", s)
			}
		}
	}
}

func TestQuickUint64NInRange(t *testing.T) {
	r := New(89)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64N(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPowerLawAboveMin(t *testing.T) {
	r := New(97)
	f := func(seed uint16) bool {
		wmin := 0.1 + float64(seed%100)/10
		beta := 2.01 + float64(seed%90)/100
		return r.PowerLaw(wmin, beta) >= wmin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(1e6)
	}
}

func BenchmarkPowerLaw(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.PowerLaw(1, 2.5)
	}
}
