// Package xrand provides the deterministic random-number substrate used by
// every stochastic component of the repository: a seedable, splittable PRNG
// plus the non-uniform samplers the GIRG/HRG/Kleinberg generators need
// (power law, Poisson, binomial, exponential, and geometric skipping).
//
// All generators in this module take an explicit *RNG so that experiments are
// reproducible from a single seed. RNGs are not safe for concurrent use; use
// Split to derive independent streams for parallel work.
package xrand

import (
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the PCG-XSL
// 128/64 design (the same generator the Go standard library adopted for
// math/rand/v2). It is reimplemented here so the repository controls the
// stream exactly and can split it deterministically.
type RNG struct {
	hi, lo uint64
}

// New returns an RNG seeded from a single 64-bit seed. Two distinct seeds
// yield streams that are independent for all practical purposes.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed using two rounds
// of splitmix64, so that even adjacent seeds produce unrelated streams.
func (r *RNG) Seed(seed uint64) {
	r.lo = splitmix64(&seed)
	r.hi = splitmix64(&seed)
}

// Split returns a new RNG whose stream is independent of the receiver's
// continued output. It consumes one value from the receiver.
func (r *RNG) Split() *RNG {
	s := r.Uint64()
	return New(s)
}

// splitmix64 advances *x and returns a well-mixed 64-bit value. It is the
// standard seeding function recommended for initializing other PRNGs.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const (
	pcgMulHi = 2549297995355413924
	pcgMulLo = 4865540595714422341
	pcgIncHi = 6364136223846793005
	pcgIncLo = 1442695040888963407
)

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	// 128-bit LCG step: state = state*mul + inc.
	hi, lo := mul128(r.hi, r.lo, pcgMulHi, pcgMulLo)
	lo, carry := add64(lo, pcgIncLo)
	hi = hi + pcgIncHi + carry
	r.hi, r.lo = hi, lo
	// XSL-RR output permutation (as in PCG-DXSM family used by rand/v2 it is
	// a cheap mix; we use the classic xorshift-rotate output).
	return rotl64(hi^lo, uint(hi>>58))
}

func mul128(aHi, aLo, bHi, bLo uint64) (hi, lo uint64) {
	// (aHi*2^64 + aLo) * (bHi*2^64 + bLo) mod 2^128.
	hi, lo = mul64(aLo, bLo)
	hi += aHi*bLo + aLo*bHi
	return hi, lo
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

func add64(a, b uint64) (sum, carry uint64) {
	sum = a + b
	if sum < a {
		carry = 1
	}
	return sum, carry
}

func rotl64(x uint64, k uint) uint64 {
	k &= 63
	return x<<(64-k) | x>>k
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniform value in the open interval (0, 1). It is the
// right primitive for inverse-CDF transforms that divide by the sample or
// take its logarithm.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN with non-positive n")
	}
	return int(r.Uint64N(uint64(n)))
}

// Uint64N returns a uniform value in [0, n) using Lemire's nearly-divisionless
// bounded rejection. It panics if n == 0.
func (r *RNG) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64N with zero n")
	}
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate 1.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Normal returns a standard normal value using the polar (Marsaglia) method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// PowerLaw samples from the density f(w) = (beta-1) * wmin^(beta-1) * w^(-beta)
// on [wmin, inf), i.e. a Pareto distribution with tail exponent beta-1. This is
// exactly the GIRG weight distribution of the paper (Section 2.1) when
// 2 < beta < 3, though the sampler is valid for any beta > 1.
func (r *RNG) PowerLaw(wmin, beta float64) float64 {
	if wmin <= 0 {
		panic("xrand: PowerLaw requires wmin > 0")
	}
	if beta <= 1 {
		panic("xrand: PowerLaw requires beta > 1")
	}
	u := r.Float64Open()
	return wmin * math.Pow(u, -1/(beta-1))
}

// PowerLawTruncated samples from the same density truncated to [wmin, wmax].
func (r *RNG) PowerLawTruncated(wmin, wmax, beta float64) float64 {
	if wmax < wmin {
		panic("xrand: PowerLawTruncated requires wmax >= wmin")
	}
	// CDF on [wmin, wmax]: F(w) = (1 - (wmin/w)^(beta-1)) / (1 - (wmin/wmax)^(beta-1)).
	a := beta - 1
	tail := 1 - math.Pow(wmin/wmax, a)
	u := r.Float64() * tail
	return wmin * math.Pow(1-u, -1/a)
}

// Poisson samples from a Poisson distribution with mean lambda. Small means
// use Knuth's product method; large means use Hörmann's PTRS transformed
// rejection, which is exact and O(1) in expectation.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		return r.poissonKnuth(lambda)
	default:
		return r.poissonPTRS(lambda)
	}
}

func (r *RNG) poissonKnuth(lambda float64) int {
	// Multiply uniforms until the product drops below e^-lambda.
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64Open()
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann (1993), "The transformed rejection method
// for generating Poisson random variables", algorithm PTRS.
func (r *RNG) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int(k)
		}
	}
}

// Binomial samples from Binomial(n, p). Small n·p uses direct simulation via
// geometric skipping; the general case uses the BTPE-free inversion for small
// means and a normal-approximation-free exact split for large n.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	mean := float64(n) * p
	if mean < 32 {
		// Count successes by skipping geometrically between them.
		count := 0
		i := r.GeometricSkip(p)
		for i < n {
			count++
			i += 1 + r.GeometricSkip(p)
		}
		return count
	}
	// Exact recursive split: X ~ Bin(n,p) can be decomposed around the median
	// of a Beta(k, n+1-k) order statistic. This is the standard
	// divide-and-conquer exact method (see Farach-Colton & Tsai).
	k := n/2 + 1
	x := r.betaMedianSplit(k, n+1-k)
	if x >= p {
		return r.Binomial(k-1, p/x)
	}
	return k + r.Binomial(n-k, (p-x)/(1-x))
}

// betaMedianSplit samples from Beta(a, b) for integer a, b >= 1 using the
// Jöhnk/ratio-of-gammas method via two gamma variates.
func (r *RNG) betaMedianSplit(a, b int) float64 {
	x := r.gammaInt(a)
	y := r.gammaInt(b)
	return x / (x + y)
}

// gammaInt samples Gamma(shape=k, scale=1) for integer k >= 1 as a sum of
// exponentials for small k and Marsaglia–Tsang for large k.
func (r *RNG) gammaInt(k int) float64 {
	if k < 16 {
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += r.Exp()
		}
		return sum
	}
	d := float64(k) - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// GeometricSkip returns the number of failures before the first success in a
// Bernoulli(p) sequence, i.e. a Geometric(p) variate supported on {0,1,...}.
// It is the core primitive of the type-II GIRG edge sampler: to visit each of
// m candidates independently with probability p, start at index GeometricSkip
// and repeatedly advance by 1+GeometricSkip.
func (r *RNG) GeometricSkip(p float64) int {
	if p >= 1 {
		return 0
	}
	const never = 1 << 62 // beyond any candidate count, exactly float-representable
	if p <= 0 {
		return never
	}
	u := r.Float64Open()
	skip := math.Floor(math.Log(u) / math.Log1p(-p))
	if skip > float64(never) {
		return never
	}
	return int(skip)
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle permutes the given slice of ints in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct uniform indices from [0, n) in increasing order
// using Floyd's algorithm. It panics if k > n.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		panic("xrand: Sample with k > n")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion sort: k is typically tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
