// Package chunglu implements the Chung-Lu random graph, the non-geometric
// ancestor of GIRGs ("the GIRG model is inspired by the classic Chung-Lu
// random graphs", Section 1.1): every vertex draws a power-law weight and
// two vertices connect independently with probability min(1, w_u w_v / S),
// S the total weight — same marginals as a GIRG (Lemma 7.1), but no
// underlying geometry.
//
// The model is the control group of experiment E14: it shows that the
// weight structure alone yields neither the constant clustering of real
// networks nor a signal greedy routing could follow.
package chunglu

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Params are the free parameters of the model.
type Params struct {
	// N is the number of vertices.
	N int
	// Beta is the weight power-law exponent (> 2).
	Beta float64
	// WMin is the minimum weight.
	WMin float64
}

// DefaultParams matches the GIRG defaults for comparisons.
func DefaultParams(n int) Params {
	return Params{N: n, Beta: 2.5, WMin: 1}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("chunglu: N = %d too small", p.N)
	}
	if !(p.Beta > 2) {
		return fmt.Errorf("chunglu: beta = %v, need > 2", p.Beta)
	}
	if !(p.WMin > 0) {
		return fmt.Errorf("chunglu: wmin = %v, need > 0", p.WMin)
	}
	return nil
}

// Generate samples a Chung-Lu graph in expected time O(n + m) with the
// Miller-Hagberg skipping algorithm: weights are sorted in decreasing
// order, so along each row the connection probability only falls and
// geometric skips with rejection visit every pair with exactly the right
// probability.
func Generate(p Params, seed uint64) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	weights := make([]float64, p.N)
	total := 0.0
	for i := range weights {
		weights[i] = rng.PowerLaw(p.WMin, p.Beta)
		total += weights[i]
	}
	// Sort indices by decreasing weight; edges are sampled in sorted order
	// and mapped back so vertex ids remain in sampling order.
	order := make([]int, p.N)
	for i := range order {
		order[i] = i
	}
	sortByWeightDesc(order, weights)
	sorted := make([]float64, p.N)
	for k, id := range order {
		sorted[k] = weights[id]
	}

	b, err := graph.NewBuilder(p.N, nil, weights, float64(p.N), p.WMin)
	if err != nil {
		return nil, err
	}
	prob := func(i, j int) float64 {
		q := sorted[i] * sorted[j] / total
		if q > 1 {
			return 1
		}
		return q
	}
	for i := 0; i < p.N-1; i++ {
		j := i + 1
		pij := prob(i, j)
		for j < p.N && pij > 0 {
			if pij < 1 {
				j += rng.GeometricSkip(pij)
			}
			if j >= p.N {
				break
			}
			q := prob(i, j)
			if rng.Bernoulli(q / pij) {
				b.AddEdge(order[i], order[j])
			}
			pij = q
			j++
		}
	}
	return b.Finish(), nil
}

// GenerateNaive is the quadratic reference sampler used to validate
// Generate.
func GenerateNaive(p Params, seed uint64) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	weights := make([]float64, p.N)
	total := 0.0
	for i := range weights {
		weights[i] = rng.PowerLaw(p.WMin, p.Beta)
		total += weights[i]
	}
	b, err := graph.NewBuilder(p.N, nil, weights, float64(p.N), p.WMin)
	if err != nil {
		return nil, err
	}
	for u := 0; u < p.N; u++ {
		for v := u + 1; v < p.N; v++ {
			q := weights[u] * weights[v] / total
			if q > 1 {
				q = 1
			}
			if rng.Bernoulli(q) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish(), nil
}

// sortByWeightDesc sorts ids by decreasing weights[id], ties broken by id
// for determinism.
func sortByWeightDesc(ids []int, weights []float64) {
	sort.Slice(ids, func(a, b int) bool {
		if weights[ids[a]] != weights[ids[b]] {
			return weights[ids[a]] > weights[ids[b]]
		}
		return ids[a] < ids[b]
	})
}
