package chunglu

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 1, Beta: 2.5, WMin: 1},
		{N: 100, Beta: 2, WMin: 1},
		{N: 100, Beta: 2.5, WMin: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestGenerateBasic(t *testing.T) {
	g, err := Generate(DefaultParams(2000), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	// E[deg_v] ~ w_v (up to the min cap), E[W] = 3 for beta = 2.5.
	if avg < 1 || avg > 8 {
		t.Fatalf("average degree %v, want ~3", avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultParams(800), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultParams(800), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts %d vs %d", a.M(), b.M())
	}
}

// TestFastMatchesNaive compares edge-count distributions of the skipping
// sampler against the quadratic reference over many seeds.
func TestFastMatchesNaive(t *testing.T) {
	p := DefaultParams(600)
	const reps = 40
	mean := func(gen func(Params, uint64) (*graph.Graph, error), base uint64) float64 {
		sum := 0.0
		for r := uint64(0); r < reps; r++ {
			g, err := gen(p, base+r)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(g.M())
		}
		return sum / reps
	}
	fast := mean(Generate, 100)
	naive := mean(GenerateNaive, 100) // same seeds -> same weights per rep
	// Means over the same weight draws; difference is only edge-coin noise.
	if math.Abs(fast-naive)/naive > 0.05 {
		t.Fatalf("fast mean edges %v vs naive %v", fast, naive)
	}
}

func TestDegreeTracksWeight(t *testing.T) {
	// Lemma 7.1's marginal without geometry: E[deg(v)] ~ w_v. Compare mean
	// degree of the heaviest decile against their mean weight.
	g, err := Generate(DefaultParams(20000), 3)
	if err != nil {
		t.Fatal(err)
	}
	sumW, sumD, count := 0.0, 0.0, 0
	for v := 0; v < g.N(); v++ {
		if w := g.Weight(v); w > 3 && w < 100 {
			sumW += w
			sumD += float64(g.Degree(v))
			count++
		}
	}
	if count < 100 {
		t.Fatalf("only %d mid-weight vertices", count)
	}
	ratio := sumD / sumW
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("degree/weight ratio %v, want ~1", ratio)
	}
}

func TestClusteringVanishes(t *testing.T) {
	// The point of E14: without geometry, clustering tends to zero (here:
	// tiny), unlike the constant clustering of GIRGs.
	g, err := Generate(DefaultParams(20000), 5)
	if err != nil {
		t.Fatal(err)
	}
	c := graph.MeanClustering(g, 4000, xrand.New(6))
	if c > 0.05 {
		t.Fatalf("Chung-Lu clustering %v unexpectedly high", c)
	}
}

func TestNoSelfLoopsNoDuplicates(t *testing.T) {
	g, err := Generate(DefaultParams(3000), 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) == v {
				t.Fatalf("self loop at %d", v)
			}
			if i > 0 && nbrs[i-1] == u {
				t.Fatalf("duplicate edge at %d", v)
			}
		}
	}
}

func BenchmarkGenerate20k(b *testing.B) {
	p := DefaultParams(20000)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
