package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/route"
)

// E16 is the chaos harness: it sweeps failure rate × fault model × protocol
// over one sparse GIRG and reports how delivery degrades. The paper makes
// three falsifiable robustness claims the sweep probes directly: greedy
// tolerates transient edge failures because any surviving good neighbor keeps
// the trajectory on track (remark after Theorem 3.5), patching protocols
// succeed within whatever component survives crashes (Theorem 3.4), and the
// weight-core is the structural bottleneck (Figure 1), so crashing the
// highest-weight vertices should hurt far more than uniform churn at equal
// rate.

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Chaos sweep: delivery under injected faults, greedy vs patching",
		Claim: "Theorem 3.4 + remark after Theorem 3.5: greedy degrades smoothly under transient edge failures, patching survives crashes within the surviving component, and core crashes hurt more than uniform churn.",
		Run:   runE16,
	})
}

// e16DefaultModels is the fault-model sweep when Config.FaultModels is empty.
var e16DefaultModels = []string{"edge-drop", "crash-uniform", "crash-core"}

func runE16(cfg Config) (Table, error) {
	t := Table{
		ID:      "E16",
		Title:   "success and hops per fault model × rate × protocol",
		Columns: []string{"model", "rate", "protocol", "success [95% CI]", "mean hops", "dead-end", "deadline", "crashed"},
	}
	models := cfg.FaultModels
	if len(models) == 0 {
		models = e16DefaultModels
	}
	n := cfg.scaledN(20000)
	pairs := cfg.scaled(300, 40)
	p := girg.DefaultParams(float64(n))
	p.Lambda = sparseLambda
	p.FixedN = true
	nw, err := core.NewGIRG(p, cfg.Seed+1600, girg.Options{})
	if err != nil {
		return t, err
	}
	protocols := []core.Protocol{core.ProtoGreedy, core.ProtoPhiDFS}
	// Patching under heavy faults can wander; the engine's deterministic
	// query budget classifies runaways as deadline failures instead of
	// letting one episode dominate the table's wall time.
	maxHops := 8 * n

	runCell := func(model string, rate float64, proto core.Protocol) error {
		mc := core.MilgramConfig{
			Pairs: pairs, Seed: cfg.Seed + 1601, Protocol: proto, MaxHops: maxHops,
			// With a checkpoint journal, each cell journals its episode
			// batches under its own namespace: a killed sweep resumes at
			// the first unfinished batch of the first unfinished cell.
			Checkpoint:    cfg.Checkpoint,
			CheckpointKey: fmt.Sprintf("E16/%s/%s/%s", model, fmtF2(rate), proto),
		}
		if model != "none" {
			plan, err := faults.NewPlan(cfg.Seed+1602, faults.Spec{Model: model, Rate: rate})
			if err != nil {
				return err
			}
			mc.Faults = plan
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, mc)
		if err != nil {
			return err
		}
		t.AddRow(model, fmtF2(rate), string(proto),
			fmtProp(rep.Success.P, rep.Success.Lo, rep.Success.Hi), fmtF2(rep.MeanHops),
			fmtInt(rep.Failures[route.FailDeadEnd]),
			fmtInt(rep.Failures[route.FailDeadline]),
			fmtInt(rep.Failures[route.FailCrashedTarget]))
		t.SetMetric(fmt.Sprintf("success_%s_%s_%s", model, fmtF2(rate), proto), rep.Success.P)
		return nil
	}

	// Fault-free baselines first, then the sweep.
	for _, proto := range protocols {
		if err := runCell("none", 0, proto); err != nil {
			return t, err
		}
	}
	for _, model := range models {
		for _, rate := range []float64{0.1, 0.3} {
			for _, proto := range protocols {
				if err := runCell(model, rate, proto); err != nil {
					return t, err
				}
			}
		}
	}

	// Qualitative verdicts, computed from the table's own metrics where the
	// swept models allow it.
	get := func(model string, rate float64, proto core.Protocol) (float64, bool) {
		v, ok := t.Metrics[fmt.Sprintf("success_%s_%s_%s", model, fmtF2(rate), proto)]
		return v, ok
	}
	swept := func(model string) bool {
		for _, m := range models {
			if m == model {
				return true
			}
		}
		return false
	}
	if base, ok := get("none", 0, core.ProtoGreedy); ok && swept("edge-drop") {
		if drop, ok := get("edge-drop", 0.3, core.ProtoGreedy); ok && base > 0 {
			t.AddNote("greedy keeps %.0f%% of fault-free deliveries under 30%% transient edge drop — degradation is smooth, as the remark after Theorem 3.5 predicts", 100*drop/base)
		}
	}
	if swept("crash-uniform") {
		gd, ok1 := get("crash-uniform", 0.3, core.ProtoGreedy)
		pd, ok2 := get("crash-uniform", 0.3, core.ProtoPhiDFS)
		if ok1 && ok2 {
			t.AddNote("under 30%% uniform crashes patching delivers %.1f%% vs greedy's %.1f%%: Theorem 3.4's promise holds within the surviving component (crashed endpoints are unreachable for both)", 100*pd, 100*gd)
		}
	}
	if swept("crash-uniform") && swept("crash-core") {
		u, ok1 := get("crash-uniform", 0.1, core.ProtoGreedy)
		c, ok2 := get("crash-core", 0.1, core.ProtoGreedy)
		if ok1 && ok2 {
			t.AddNote("crashing the top-10%% weight core leaves greedy at %.1f%% vs %.1f%% under equal-rate uniform churn: the core Figure 1 routes through is the structural bottleneck", 100*c, 100*u)
		}
	}
	t.AddNote("swept models: %s (of registered: %s)", strings.Join(models, ", "), strings.Join(faults.RegisteredSorted(), ", "))
	return t, nil
}
