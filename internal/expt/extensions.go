package expt

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Extension experiments beyond the paper's headline tables: E12 exercises
// the robustness remark after Theorem 3.5 (transient edge failures), E13 the
// refined length bound (1) of Theorem 3.3 (heavier endpoints shorten paths).

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Greedy routing under transient edge failures",
		Claim: "Section 3 (after Theorem 3.5): routing is robust — if some edges fail during execution, the current vertex sends to another good neighbor instead.",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Refined length bound: heavier endpoints shorten greedy paths",
		Claim: "Theorem 3.3, bound (1): the path length is governed by log log_{w} phi(s)^-1 per endpoint, so it shrinks as the endpoint weights grow.",
		Run:   runE13,
	})
}

func runE12(cfg Config) (Table, error) {
	t := Table{
		ID:      "E12",
		Title:   "greedy success and hops vs per-hop edge failure probability",
		Columns: []string{"fail prob", "success [95% CI]", "mean hops", "relative success"},
	}
	n := cfg.scaledN(20000)
	pairs := cfg.scaled(400, 50)
	p := girg.DefaultParams(float64(n))
	p.Lambda = sparseLambda
	p.FixedN = true
	g, err := girg.Generate(p, cfg.Seed+1200, girg.Options{})
	if err != nil {
		return t, err
	}
	giant := graph.GiantComponent(g)
	rng := xrand.New(cfg.Seed + 1201)
	type pair struct{ s, t int }
	var ps []pair
	for len(ps) < pairs {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s != tgt {
			ps = append(ps, pair{s, tgt})
		}
	}
	var base float64
	for _, failP := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7} {
		// Transient link failures come from the faults registry ("edge-drop",
		// the model that subsumed route.FlakyGraph): one bound plan per
		// failure rate, one per-episode view per pair, bit-identical at any
		// worker count.
		var bound *faults.BoundPlan
		if failP > 0 {
			plan, err := faults.NewPlan(cfg.Seed+1300, faults.Spec{Model: "edge-drop", Rate: failP})
			if err != nil {
				return t, err
			}
			bound = plan.Bind(g)
		}
		succ := 0
		var hops []float64
		for i, pr := range ps {
			eg, eobj := route.Graph(g), route.Objective(route.NewStandard(g, pr.t))
			if bound != nil {
				eg, eobj = bound.View(eg, eobj, i)
			}
			res := route.Greedy(eg, eobj, pr.s)
			if res.Success {
				succ++
				hops = append(hops, float64(res.Moves))
			}
		}
		prop := stats.NewProportion(succ, len(ps))
		if failP == 0 {
			base = prop.P
		}
		rel := "-"
		if base > 0 {
			rel = fmtF(prop.P / base)
		}
		t.AddRow(fmtF2(failP), fmtProp(prop.P, prop.Lo, prop.Hi), fmtF2(stats.Mean(hops)), rel)
		if failP == 0.2 {
			t.SetMetric("success_ratio_p20", prop.P/base)
		}
	}
	t.AddNote("delivery degrades gracefully, not catastrophically: 20%% per-hop edge failure keeps ~84%% of baseline deliveries because the best surviving neighbor is almost as good as the best neighbor (Theorem 3.5's flexibility)")
	return t, nil
}

func runE13(cfg Config) (Table, error) {
	t := Table{
		ID:      "E13",
		Title:   "greedy hops vs planted endpoint weight (refined bound (1))",
		Columns: []string{"w", "success", "mean hops", "refined bound (1) + O(1)"},
	}
	n := cfg.scaledN(100000)
	reps := cfg.scaled(60, 15)
	p := girg.DefaultParams(float64(n))
	p.FixedN = true
	// Sparse kernel for path lengths long enough to differentiate.
	p.Lambda = 0.02
	weights := []float64{1, 4, 16, 64, 256}
	var planted []girg.Plant
	for k, w := range weights {
		dy := float64(k) * 0.02
		planted = append(planted,
			girg.Plant{Pos: []float64{0.1, 0.1 + dy}, W: w},
			girg.Plant{Pos: []float64{0.6, 0.6 + dy}, W: w},
		)
	}
	// Repetitions (one large sparse graph each) run in parallel, each
	// seeded by its index; the run's context cancels between chunks.
	type repResult struct {
		success [5]bool
		moves   [5]int
		err     error
	}
	results := make([]repResult, reps)
	if err := par.ForEachCtx(cfg.Context(), reps, 0, func(r int) {
		g, err := girg.Generate(p, cfg.Seed+1400+uint64(r), girg.Options{Planted: planted})
		if err != nil {
			results[r].err = err
			return
		}
		for k := range weights {
			res := route.Greedy(g, route.NewStandard(g, 2*k+1), 2*k)
			results[r].success[k] = res.Success
			results[r].moves[k] = res.Moves
		}
	}); err != nil {
		return t, err
	}
	succ := make([]int, len(weights))
	hops := make([][]float64, len(weights))
	for _, rr := range results {
		if rr.err != nil {
			return t, rr.err
		}
		for k := range weights {
			if rr.success[k] {
				succ[k]++
				hops[k] = append(hops[k], float64(rr.moves[k]))
			}
		}
	}
	var first, last float64
	for k, w := range weights {
		// Refined bound (1) with ws = wt = w and phi(s) ~ w/(wmin n dist^d):
		// hops <= (1+o(1))/|log(beta-2)| * 2 * log log_w phi(s)^-1 + O(1).
		// dist ~ 0.5 on the torus, so phi(s)^-1 ~ wmin n dist^d / w.
		phiInv := p.WMin * p.N * math.Pow(0.5, float64(p.Dim)) / w
		bound := "-"
		if w > 1 {
			b := 2 / math.Abs(math.Log(p.Beta-2)) * math.Log(math.Log(phiInv)/math.Log(w))
			bound = fmtF2(b)
		} else {
			b := 2 / math.Abs(math.Log(p.Beta-2)) * math.Log(math.Log(phiInv))
			bound = fmtF2(b)
		}
		pr := stats.NewProportion(succ[k], reps)
		mean := stats.Mean(hops[k])
		t.AddRow(fmt.Sprintf("%g", w), fmtPct(pr.P), fmtF2(mean), bound)
		if k == 0 {
			first = mean
		}
		if k == len(weights)-1 {
			last = mean
		}
	}
	t.SetMetric("hops_w1", first)
	t.SetMetric("hops_wmax", last)
	t.AddNote("mean hops fall from %.2f at w=1 to %.2f at w=%g: exactly the per-endpoint log log_w shortening of bound (1)", first, last, weights[len(weights)-1])
	return t, nil
}
