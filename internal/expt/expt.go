// Package expt defines one registered experiment per table/figure of the
// reproduction (DESIGN.md Section 4): the workload, the parameter sweep, any
// baselines, and a text table matching what the paper's claims predict.
// Experiments are run by cmd/smallworld and wrapped by the root-level
// benchmarks.
package expt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ckpt"
)

// Config controls the cost of an experiment run.
type Config struct {
	// Seed drives all randomness of the run.
	Seed uint64
	// Scale multiplies workload sizes: 1 reproduces the full table (the
	// numbers recorded in EXPERIMENTS.md); small values like 0.05 give
	// smoke-test versions for tests and quick benchmarks.
	Scale float64
	// Ctx, when non-nil, cancels the run: experiments thread it through
	// the batch routing engine (core.RunMilgramCtx), so Ctrl-C on
	// cmd/smallworld aborts within a few episodes instead of finishing the
	// table. A nil Ctx means context.Background().
	Ctx context.Context
	// FaultModels restricts which registered fault models the chaos sweep
	// (E16) exercises; empty means the experiment's default set. Names are
	// validated against the faults registry when the sweep builds its plans,
	// so an unknown name fails with the registered list.
	FaultModels []string
	// Checkpoint, when non-nil, makes checkpoint-aware experiments (the
	// long sweeps: E16) crash-safe: each sweep cell journals its completed
	// episode batches through the engine, and a resumed run replays them
	// to produce a table bit-identical to an uninterrupted run. The journal
	// must be bound (via its manifest key) to this run's id, seed, scale
	// and fault-model set — cmd/smallworld takes care of that. Experiments
	// that do not checkpoint ignore it.
	Checkpoint *ckpt.Journal
}

// Context returns the run's context, defaulting to context.Background().
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// scaled returns max(lo, round(base*Scale)).
func (c Config) scaled(base, lo int) int {
	v := int(float64(base)*c.Scale + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

// scaledN scales a graph size with a floor of 300 vertices.
func (c Config) scaledN(base int) int { return c.scaled(base, 300) }

// Table is the formatted outcome of an experiment.
type Table struct {
	// ID is the experiment id (E1..E16, F1).
	ID string
	// Title restates what the table shows.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the formatted data cells.
	Rows [][]string
	// Notes carry derived findings (fit constants, verdicts).
	Notes []string
	// Metrics exposes headline numbers for benchmarks (name -> value).
	Metrics map[string]float64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// SetMetric records a headline number.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[name] = v
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an id with its runner.
type Experiment struct {
	// ID is the experiment identifier (E1..E16, F1).
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper statement the experiment reproduces.
	Claim string
	// Run executes the experiment.
	Run func(cfg Config) (Table, error)
}

var registry = map[string]Experiment{}

// register adds an experiment to the registry; it panics on duplicate ids
// (a programming error caught at test time).
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments sorted by id (E1..E16 then F1).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// lessID orders E2 before E10 (numeric suffix) and E* before F*.
func lessID(a, b string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	var na, nb int
	fmt.Sscanf(a[1:], "%d", &na)
	fmt.Sscanf(b[1:], "%d", &nb)
	return na < nb
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// sparseLambda is the kernel prefactor the routing experiments use for
// GIRGs: it brings average degrees down to ~10 (like the networks the
// experimental literature routes on) while keeping condition (EP3)
// (saturation at c1 = lambda^{1/alpha}). The dense lambda = 1 kernel makes
// every routing question trivially easy.
const sparseLambda = 0.02

// formatters shared by the experiment files.

func fmtF(v float64) string   { return fmt.Sprintf("%.3f", v) }
func fmtF2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func fmtInt(v int) string     { return fmt.Sprintf("%d", v) }
func fmtProp(p, lo, hi float64) string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", p, lo, hi)
}
