package expt

import (
	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/route"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Patching protocols: 100% success at stretch 1+o(1); gravity-pressure overhead",
		Claim: "Theorem 3.4: any (P1)-(P3) patching routes with probability 1 within a component in (2+o(1))/|log(beta-2)| log log n steps; Section 5: gravity-pressure violates (P3) and may wander.",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Relaxed (approximate) objectives preserve routing",
		Claim: "Theorem 3.5: greedy routing under phi~ = Theta(phi * min{w, phi^-1}^o(1)) retains success probability, length and stretch.",
		Run:   runE7,
	})
}

func runE6(cfg Config) (Table, error) {
	t := Table{
		ID:      "E6",
		Title:   "protocol comparison on GIRGs (pairs in the giant component)",
		Columns: []string{"n", "protocol", "success", "median moves", "mean moves", "p95 moves", "median stretch", "truncated"},
	}
	baseNs := []int{3000, 10000, 30000}
	pairs := cfg.scaled(200, 30)
	seed := cfg.Seed + 600
	for _, baseN := range baseNs {
		n := cfg.scaledN(baseN)
		p := girg.DefaultParams(float64(n))
		// Sparse kernel: pure greedy now actually fails sometimes, which
		// is the regime where patching earns its keep.
		p.Lambda = 0.005
		p.FixedN = true
		seed++
		nw, err := core.NewGIRG(p, seed, girg.Options{})
		if err != nil {
			return t, err
		}
		for _, proto := range core.Protocols() {
			rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
				Pairs: pairs, Protocol: proto, Seed: seed * 11, ComputeStretch: true,
			})
			if err != nil {
				return t, err
			}
			t.AddRow(fmtInt(n), proto.String(), fmtPct(rep.Success.P),
				fmtF2(stats.Median(rep.Hops)), fmtF2(rep.MeanHops),
				fmtF2(stats.Quantile(rep.Hops, 0.95)), fmtF(stats.Median(rep.Stretches)), fmtInt(rep.Truncated))
			if proto == core.ProtoPhiDFS {
				t.SetMetric("phidfs_success", rep.Success.P)
				t.SetMetric("phidfs_median_stretch", stats.Median(rep.Stretches))
			}
		}
	}
	t.AddNote("phi-dfs and history are (P1)-(P3) patchers: success must be 100%% within the giant at a.a.s. stretch 1+o(1) (medians); the mean move counts carry a heavy tail from the rare deep exhaustive searches (P3) allows")
	return t, nil
}

func runE7(cfg Config) (Table, error) {
	t := Table{
		ID:      "E7",
		Title:   "greedy routing under noisy objectives phi~ = phi * M^U[-eps,+eps]",
		Columns: []string{"eps", "success [95% CI]", "mean hops", "mean stretch"},
	}
	n := cfg.scaledN(30000)
	pairs := cfg.scaled(400, 50)
	p := girg.DefaultParams(float64(n))
	p.Lambda = sparseLambda
	p.FixedN = true
	nw, err := core.NewGIRG(p, cfg.Seed+700, girg.Options{})
	if err != nil {
		return t, err
	}
	epss := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8}
	var base, worst float64
	for i, eps := range epss {
		eps := eps
		objFactory := func(tgt int) route.Objective {
			return route.NewRelaxed(route.NewStandard(nw.Graph, tgt), nw.Graph, eps, cfg.Seed+702)
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
			Pairs:          pairs,
			Seed:           cfg.Seed + 701,
			ComputeStretch: true,
			Objective:      objFactory,
		})
		if err != nil {
			return t, err
		}
		t.AddRow(fmtF2(eps), fmtProp(rep.Success.P, rep.Success.Lo, rep.Success.Hi),
			fmtF2(rep.MeanHops), fmtF(rep.MeanStretch))
		if i == 0 {
			base = rep.Success.P
		}
		worst = rep.Success.P
	}
	t.SetMetric("success_exact", base)
	t.SetMetric("success_noisiest", worst)
	t.AddNote("success moves from %.3f (exact phi) to %.3f at eps=%.1f; Theorem 3.5 predicts only o(1) degradation for o(1) exponents", base, worst, epss[len(epss)-1])
	return t, nil
}
