package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Greedy path length scales as (2/|log(beta-2)|) log log n",
		Claim: "Theorem 3.3: a.a.s. greedy routing stops after at most (2+o(1))/|log(beta-2)| * log log n steps.",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Stretch of successful greedy paths approaches 1",
		Claim: "Theorem 3.3 / Section 4: conditional on success, the stretch is 1+o(1).",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "F1",
		Title: "Typical trajectory of a greedy path (Figure 1)",
		Claim: "Section 4/6: the path first climbs to high-weight core vertices (weight phase), then descends toward the target with rising objective (objective phase); each layer is visited at most once.",
		Run:   runF1,
	})
}

func runE4(cfg Config) (Table, error) {
	t := Table{
		ID:      "E4",
		Title:   "mean greedy hops (successful routings) vs n and beta",
		Columns: []string{"beta", "n", "lnln n", "mean hops", "median", "p95", "theory 2/|ln(b-2)|*lnln n"},
	}
	baseNs := []int{1000, 3162, 10000, 31623, 100000, 316228}
	betas := []float64{2.3, 2.5, 2.7}
	pairs := cfg.scaled(300, 40)
	seed := cfg.Seed + 300
	for _, beta := range betas {
		var xs, ys []float64
		for _, baseN := range baseNs {
			n := cfg.scaledN(baseN)
			p := girg.DefaultParams(float64(n))
			p.Beta = beta
			p.Lambda = sparseLambda
			p.FixedN = true
			seed++
			nw, err := core.NewGIRG(p, seed, girg.Options{})
			if err != nil {
				return t, err
			}
			rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 13})
			if err != nil {
				return t, err
			}
			lnln := math.Log(math.Log(float64(n)))
			theory := stats.TheoryHopConstant(beta) * lnln
			t.AddRow(fmtF2(beta), fmtInt(n), fmtF2(lnln), fmtF2(rep.MeanHops),
				fmtF2(stats.Median(rep.Hops)), fmtF2(stats.Quantile(rep.Hops, 0.95)), fmtF2(theory))
			xs = append(xs, lnln)
			ys = append(ys, rep.MeanHops)
		}
		fit := stats.FitLine(xs, ys)
		t.SetMetric("slope_beta_"+fmtF2(beta), fit.Slope)
		t.AddNote("beta=%.2f: hops ~ %.2f * lnln n + %.2f (R^2 %.3f); theory slope 2/|ln(beta-2)| = %.2f",
			beta, fit.Slope, fit.Intercept, fit.R2, stats.TheoryHopConstant(beta))
	}
	return t, nil
}

func runE5(cfg Config) (Table, error) {
	t := Table{
		ID:      "E5",
		Title:   "stretch of successful greedy paths (hops / BFS distance)",
		Columns: []string{"n", "success", "mean stretch", "median stretch", "p95 stretch", "share stretch=1"},
	}
	baseNs := []int{3000, 10000, 30000, 100000}
	pairs := cfg.scaled(250, 30)
	seed := cfg.Seed + 400
	var lastMean float64
	for _, baseN := range baseNs {
		n := cfg.scaledN(baseN)
		p := girg.DefaultParams(float64(n))
		p.Lambda = sparseLambda
		p.FixedN = true
		seed++
		nw, err := core.NewGIRG(p, seed, girg.Options{})
		if err != nil {
			return t, err
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
			Pairs: pairs, Seed: seed * 7, ComputeStretch: true,
		})
		if err != nil {
			return t, err
		}
		exact := 0
		for _, s := range rep.Stretches {
			if s == 1 {
				exact++
			}
		}
		share := 0.0
		if len(rep.Stretches) > 0 {
			share = float64(exact) / float64(len(rep.Stretches))
		}
		t.AddRow(fmtInt(n), fmtPct(rep.Success.P), fmtF(rep.MeanStretch),
			fmtF(stats.Median(rep.Stretches)), fmtF(stats.Quantile(rep.Stretches, 0.95)), fmtPct(share))
		lastMean = rep.MeanStretch
	}
	t.SetMetric("final_mean_stretch", lastMean)
	t.AddNote("mean stretch at the largest size is %.3f; Theorem 3.3 predicts 1+o(1)", lastMean)
	return t, nil
}

func runF1(cfg Config) (Table, error) {
	t := Table{
		ID:      "F1",
		Title:   "per-hop trajectory of one successful greedy path (low-weight, far-apart s and t)",
		Columns: []string{"hop", "weight", "objective phi", "phase"},
	}
	n := cfg.scaledN(200000)
	p := girg.DefaultParams(float64(n))
	p.FixedN = true
	// Sparse kernel (EP3 still holds with c1 = lambda^{1/alpha}): average
	// degree ~10 keeps the path long enough to expose both phases.
	p.Lambda = 0.02
	planted := []girg.Plant{
		{Pos: []float64{0.1, 0.1}, W: p.WMin},
		{Pos: []float64{0.6, 0.6}, W: p.WMin},
	}
	// gamma(eps1) with a small eps1, the phase boundary of Section 7.3:
	// phase 1 while phi(v) <= w_v^-gamma, phase 2 after.
	gamma := (1 - 0.05) / (p.Beta - 2)
	// Keep the longest successful trajectory over repeated graph draws (at
	// small scales paths are short; at full scale a >= 6-hop path appears
	// within a few attempts).
	var hops []route.MoveEvent
	for attempt := 0; attempt < 50; attempt++ {
		g, err := girg.Generate(p, cfg.Seed+500+uint64(attempt), girg.Options{Planted: planted})
		if err != nil {
			return t, err
		}
		obj := route.NewStandard(g, 1)
		res := route.Greedy(g, obj, 0)
		if res.Success && len(res.Path) > len(hops) {
			hops = route.Moves(g, obj, res, 0)
			if res.Moves >= 6 {
				break
			}
		}
	}
	if hops == nil {
		t.AddNote("no successful low-weight routing found in 50 attempts (increase scale)")
		return t, nil
	}
	maxWHop, maxW := 0, 0.0
	for i, h := range hops {
		phase := "1 (weight climb)"
		if h.Score > math.Pow(h.W, -gamma) {
			phase = "2 (objective climb)"
		}
		if i == len(hops)-1 {
			phase = "target"
		}
		score := fmtScientific(h.Score)
		t.AddRow(fmtInt(i), fmtF2(h.W), score, phase)
		if h.W > maxW && i < len(hops)-1 {
			maxW, maxWHop = h.W, i
		}
	}
	t.SetMetric("hops", float64(len(hops)-1))
	t.SetMetric("peak_weight", maxW)
	t.AddNote("path length %d; weight peaks at hop %d of %d with w = %.1f (the network core), matching Figure 1's two-phase shape",
		len(hops)-1, maxWHop, len(hops)-1, maxW)
	// The trace phase analyzer (obs.Analyze) splits the same trajectory at
	// its max-weight hop; its phase lengths are the machine-readable form of
	// the table above and the invariant the observability tests assert.
	spans := make([]obs.Span, len(hops))
	for i, h := range hops {
		spans[i] = obs.Span{Step: i, W: h.W, Score: h.Score}
	}
	ph := obs.Analyze(spans)
	t.SetMetric("weight_phase_hops", float64(ph.WeightHops))
	t.SetMetric("objective_phase_hops", float64(ph.ObjectiveHops))
	t.AddNote("phase analyzer: %d weight-phase hops, %d objective-phase hops (boundary at the max-weight hop); two-phase shape: %v",
		ph.WeightHops, ph.ObjectiveHops, ph.TwoPhase)
	// Objective must increase monotonically (by construction of greedy).
	mono := true
	for i := 1; i < len(hops); i++ {
		if hops[i].Score <= hops[i-1].Score {
			mono = false
		}
	}
	if mono {
		t.AddNote("objective strictly increases along the path (greedy invariant)")
	}
	return t, nil
}

func fmtScientific(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3g", v)
}
