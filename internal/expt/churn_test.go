package expt

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/girg"
)

// TestE17Deterministic is the churn analogue of the E16 golden check: the
// sweep must render bit-identically on one core and on all of them, and
// across same-seed runs, because both the churn stream (pure-hash Poisson)
// and the routing engine are deterministic.
func TestE17Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the churn sweep three times")
	}
	e, ok := ByID("E17")
	if !ok {
		t.Fatal("E17 not registered")
	}
	cfg := Config{Seed: 4, Scale: 0.02}
	prev := runtime.GOMAXPROCS(1)
	seq, err := e.Run(cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Format() != parl.Format() {
		t.Fatalf("E17 table differs across worker counts:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
			seq.Format(), runtime.GOMAXPROCS(0), parl.Format())
	}
	if !reflect.DeepEqual(seq.Metrics, parl.Metrics) {
		t.Fatalf("E17 metrics differ across worker counts: %v vs %v", seq.Metrics, parl.Metrics)
	}
	again, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parl.Format() != again.Format() {
		t.Fatalf("E17 table differs across same-seed runs:\n%s\nvs\n%s", parl.Format(), again.Format())
	}
}

// TestChurnOverlayDeterministic pins the stream itself: same (graph, seed,
// rates) must produce the same overlay fingerprint, and the realized event
// counts must sit near their Poisson expectations.
func TestChurnOverlayDeterministic(t *testing.T) {
	p := girg.DefaultParams(2000)
	p.Lambda = sparseLambda
	p.FixedN = true
	g, err := girg.Generate(p, 99, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := churnOverlay(g, 7, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := churnOverlay(g, 7, 0.10, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same-seed churn overlays differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	st := a.Stats()
	wantEach := 0.10 * float64(g.N())
	if f := float64(st.AddedVertices); f < 0.5*wantEach || f > 1.5*wantEach {
		t.Fatalf("joins %d far from Poisson expectation %.0f", st.AddedVertices, wantEach)
	}
	if f := float64(st.RemovedVertices); f < 0.5*wantEach || f > 1.5*wantEach {
		t.Fatalf("leaves %d far from Poisson expectation %.0f", st.RemovedVertices, wantEach)
	}
	// Every joined vertex must be wired: isolated joiners would be trivially
	// unroutable and make the "joins are free" row meaningless.
	for v := g.N(); v < a.N(); v++ {
		if !a.Tombstoned(v) && a.Degree(v) == 0 {
			t.Fatalf("joined vertex %d is isolated", v)
		}
	}
	if c, err := churnOverlay(g, 8, 0.10, 0.10); err != nil {
		t.Fatal(err)
	} else if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced identical churn overlays")
	}
}

// TestPoissonHashMoments sanity-checks the pure-hash sampler: over many
// draws the mean must track lambda (a broken inversion would bias every
// churn rate in the sweep).
func TestPoissonHashMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 15} {
		sum := 0
		const draws = 4000
		for i := uint64(0); i < draws; i++ {
			sum += poissonHash(lambda, 11, i, 5)
		}
		mean := float64(sum) / draws
		if mean < 0.9*lambda || mean > 1.1*lambda {
			t.Fatalf("lambda=%v: hash-Poisson mean %.3f off by >10%%", lambda, mean)
		}
	}
	if poissonHash(0, 1, 1, 1) != 0 {
		t.Fatal("lambda=0 must draw 0")
	}
}

// TestChurnOverlayRatesScale checks the sweep's independent variable really
// moves: higher leave rates tombstone more vertices.
func TestChurnOverlayRatesScale(t *testing.T) {
	p := girg.DefaultParams(1500)
	p.FixedN = true
	g, err := girg.Generate(p, 5, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var removed []int
	for _, rate := range []float64{0.02, 0.08, 0.20} {
		ov, err := churnOverlay(g, 3, 0, rate)
		if err != nil {
			t.Fatal(err)
		}
		removed = append(removed, ov.Stats().RemovedVertices)
	}
	for i := 1; i < len(removed); i++ {
		if removed[i] <= removed[i-1] {
			t.Fatalf("leave rates %v produced non-increasing removals %v", []float64{0.02, 0.08, 0.20}, removed)
		}
	}
}
