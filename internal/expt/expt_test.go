package expt

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "F1"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %s missing", id)
			continue
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete: %+v", id, e)
		}
	}
	// Lowercase lookup works too.
	if _, ok := ByID("e4"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("unknown id found")
	}
}

func TestAllOrdering(t *testing.T) {
	all := All()
	if all[0].ID != "E1" || all[len(all)-1].ID != "F1" {
		t.Fatalf("ordering: first %s last %s", all[0].ID, all[len(all)-1].ID)
	}
	// E2 must come before E10 (numeric, not lexicographic).
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if idx["E2"] > idx["E10"] {
		t.Fatal("E2 ordered after E10")
	}
}

func TestTableFormat(t *testing.T) {
	tb := Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("hello %d", 5)
	out := tb.Format()
	if !strings.Contains(out, "== T: demo ==") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "note: hello 5") {
		t.Fatalf("missing note: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + columns + rule + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("unexpected line count %d: %q", len(lines), out)
	}
	// Columns aligned: data lines have the same prefix width.
	if !strings.HasPrefix(lines[3], "1  ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestMetrics(t *testing.T) {
	var tb Table
	tb.SetMetric("x", 1.5)
	tb.SetMetric("y", 2)
	if tb.Metrics["x"] != 1.5 || tb.Metrics["y"] != 2 {
		t.Fatalf("%v", tb.Metrics)
	}
}

func TestScaled(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if got := cfg.scaled(1000, 50); got != 100 {
		t.Fatalf("scaled = %d", got)
	}
	if got := cfg.scaled(100, 50); got != 50 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := cfg.scaledN(1000); got != 300 {
		t.Fatalf("scaledN floor: %d", got)
	}
}

// TestAllExperimentsSmoke runs every experiment at a tiny scale: tables must
// be produced without error, with at least one row and consistent widths.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs take ~1 min")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run(Config{Seed: 1, Scale: 0.02})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Fatalf("%s row width %d != %d columns", e.ID, len(row), len(tb.Columns))
				}
			}
			if out := tb.Format(); len(out) == 0 {
				t.Fatalf("%s empty output", e.ID)
			}
		})
	}
}

func TestFormatCSV(t *testing.T) {
	tb := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("1", "x,y") // comma must be quoted
	tb.AddNote("hello")
	out, err := tb.FormatCSV()
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n# hello\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

func TestFormatJSON(t *testing.T) {
	tb := Table{ID: "T", Title: "demo", Columns: []string{"a"}}
	tb.AddRow("1")
	tb.SetMetric("m", 2.5)
	out, err := tb.FormatJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"id": "T"`) || !strings.Contains(out, `"m": 2.5`) {
		t.Fatalf("json = %s", out)
	}
}
