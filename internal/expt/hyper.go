package expt

import (
	"repro/internal/core"
	"repro/internal/hrg"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Geometric greedy routing on hyperbolic random graphs",
		Claim: "Corollary 3.6 / Section 11: all success-probability and path-length results transfer to geometric routing (minimize hyperbolic distance) on hyperbolic random graphs.",
		Run:   runE8,
	})
}

func runE8(cfg Config) (Table, error) {
	t := Table{
		ID:      "E8",
		Title:   "routing on hyperbolic random graphs: phi_H (geometric) vs embedded-GIRG phi",
		Columns: []string{"n", "T", "objective", "giant%", "success [95% CI]", "mean hops", "mean stretch"},
	}
	type cell struct {
		n int
		T float64
	}
	cells := []cell{
		{cfg.scaledN(2000), 0},
		{cfg.scaledN(5000), 0},
		{cfg.scaledN(10000), 0},
		{cfg.scaledN(20000), 0},
		// Beyond the quadratic sampler's reach: the layered Fermi-Dirac
		// sampler (hrg.GenerateFast) takes over inside core.NewHRG.
		{cfg.scaledN(100000), 0},
		{cfg.scaledN(10000), 0.5},
	}
	pairs := cfg.scaled(300, 40)
	seed := cfg.Seed + 800
	var phiHSuccess float64
	for _, c := range cells {
		p := hrg.DefaultParams(c.n)
		p.TH = c.T
		p.CH = 0.5 // dense enough for a solid giant component
		seed++
		for _, hyperbolic := range []bool{true, false} {
			nw, err := core.NewHRG(p, seed, hyperbolic)
			if err != nil {
				return t, err
			}
			rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
				Pairs: pairs, Seed: seed * 19, ComputeStretch: true,
			})
			if err != nil {
				return t, err
			}
			objName := "phi (GIRG)"
			if hyperbolic {
				objName = "phi_H (geom)"
			}
			giantFrac := float64(len(nw.Giant())) / float64(nw.Graph.N())
			t.AddRow(fmtInt(c.n), fmtF2(c.T), objName, fmtPct(giantFrac),
				fmtProp(rep.Success.P, rep.Success.Lo, rep.Success.Hi),
				fmtF2(rep.MeanHops), fmtF(rep.MeanStretch))
			if hyperbolic {
				phiHSuccess = rep.Success.P
			}
		}
	}
	t.SetMetric("phiH_success_last", phiHSuccess)

	// Corollary 3.6 also covers patching (random target): Algorithm 2 under
	// the geometric objective must deliver everything in the giant.
	{
		p := hrg.DefaultParams(cfg.scaledN(10000))
		p.CH = 0.5
		nw, err := core.NewHRG(p, seed+1, true)
		if err != nil {
			return t, err
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
			Pairs: pairs, Protocol: core.ProtoPhiDFS, Seed: seed * 23, ComputeStretch: true,
		})
		if err != nil {
			return t, err
		}
		giantFrac := float64(len(nw.Giant())) / float64(nw.Graph.N())
		t.AddRow(fmtInt(p.N), fmtF2(p.TH), "phi_H+phi-dfs", fmtPct(giantFrac),
			fmtProp(rep.Success.P, rep.Success.Lo, rep.Success.Hi),
			fmtF2(rep.MeanHops), fmtF(rep.MeanStretch))
		t.SetMetric("phiH_patched_success", rep.Success.P)
	}
	t.AddNote("phi_H and the embedded phi behave alike (Theorem 3.5 via Lemma 11.2): high success, ultra-short paths, stretch near 1 — the affirmative answer to Krioukov et al.'s internet-routing question")
	t.AddNote("the phi-dfs row confirms Corollary 3.6's patching transfer: delivery within the giant is 100%%")
	return t, nil
}
