package expt

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
)

// TestE16Deterministic is the table-level golden determinism check: the
// chaos sweep must render bit-identically whether its batches route on one
// core or all of them, and across two same-seed runs, because every fault
// decision is a pure function of (seed, episode, query).
func TestE16Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep three times")
	}
	e, ok := ByID("E16")
	if !ok {
		t.Fatal("E16 not registered")
	}
	cfg := Config{Seed: 4, Scale: 0.02}
	prev := runtime.GOMAXPROCS(1)
	seq, err := e.Run(cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Format() != parl.Format() {
		t.Fatalf("E16 table differs across worker counts:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
			seq.Format(), runtime.GOMAXPROCS(0), parl.Format())
	}
	if !reflect.DeepEqual(seq.Metrics, parl.Metrics) {
		t.Fatalf("E16 metrics differ across worker counts: %v vs %v", seq.Metrics, parl.Metrics)
	}
	again, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parl.Format() != again.Format() {
		t.Fatalf("E16 table differs across same-seed runs:\n%s\nvs\n%s", parl.Format(), again.Format())
	}
}

func TestE16UnknownFaultModelListed(t *testing.T) {
	e, ok := ByID("E16")
	if !ok {
		t.Fatal("E16 not registered")
	}
	_, err := e.Run(Config{Seed: 1, Scale: 0.02, FaultModels: []string{"bogus"}})
	if err == nil {
		t.Fatal("unknown fault model accepted")
	}
	for _, name := range []string{"edge-drop", "crash-core", "objective-noise"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered model %q", err, name)
		}
	}
}

func TestE16RestrictedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	e, _ := ByID("E16")
	tb, err := e.Run(Config{Seed: 2, Scale: 0.02, FaultModels: []string{"edge-drop"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] != "none" && row[0] != "edge-drop" {
			t.Fatalf("restricted sweep ran model %q: %v", row[0], row)
		}
	}
}

// TestE16CheckpointResume is the sweep-level crash contract: cancel a
// checkpointed E16 mid-sweep, resume with the same journal, and the final
// table renders bit-identically to an uninterrupted run.
func TestE16CheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep twice")
	}
	e, ok := ByID("E16")
	if !ok {
		t.Fatal("E16 not registered")
	}
	base := Config{Seed: 4, Scale: 0.02, FaultModels: []string{"edge-drop"}}
	want, err := e.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	open := func() *ckpt.Journal {
		j, err := ckpt.Open(dir, "e16-test")
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	// Interrupted attempt: cancel as soon as the first cells have journaled
	// batches. The sweep aborts with the context error, leaving a part-full
	// journal behind.
	j := open()
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := base
	interrupted.Ctx = ctx
	interrupted.Checkpoint = j
	go func() {
		for j.Len() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, err := e.Run(interrupted); err == nil {
		t.Log("cancellation landed after the sweep finished; resume degenerates to full replay")
	}
	journaled := j.Len()
	j.Close()
	cancel()
	if journaled == 0 {
		t.Fatal("nothing journaled before cancellation")
	}

	j2 := open()
	defer j2.Close()
	resumed := base
	resumed.Checkpoint = j2
	got, err := e.Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format() != want.Format() {
		t.Fatalf("resumed E16 table differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s",
			want.Format(), got.Format())
	}
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Fatalf("resumed E16 metrics differ: %v vs %v", want.Metrics, got.Metrics)
	}
	if j2.Reused() < journaled {
		t.Fatalf("resume replayed %d records, journal held %d", j2.Reused(), journaled)
	}
}
