package expt

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestE16Deterministic is the table-level golden determinism check: the
// chaos sweep must render bit-identically whether its batches route on one
// core or all of them, and across two same-seed runs, because every fault
// decision is a pure function of (seed, episode, query).
func TestE16Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chaos sweep three times")
	}
	e, ok := ByID("E16")
	if !ok {
		t.Fatal("E16 not registered")
	}
	cfg := Config{Seed: 4, Scale: 0.02}
	prev := runtime.GOMAXPROCS(1)
	seq, err := e.Run(cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Format() != parl.Format() {
		t.Fatalf("E16 table differs across worker counts:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
			seq.Format(), runtime.GOMAXPROCS(0), parl.Format())
	}
	if !reflect.DeepEqual(seq.Metrics, parl.Metrics) {
		t.Fatalf("E16 metrics differ across worker counts: %v vs %v", seq.Metrics, parl.Metrics)
	}
	again, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parl.Format() != again.Format() {
		t.Fatalf("E16 table differs across same-seed runs:\n%s\nvs\n%s", parl.Format(), again.Format())
	}
}

func TestE16UnknownFaultModelListed(t *testing.T) {
	e, ok := ByID("E16")
	if !ok {
		t.Fatal("E16 not registered")
	}
	_, err := e.Run(Config{Seed: 1, Scale: 0.02, FaultModels: []string{"bogus"}})
	if err == nil {
		t.Fatal("unknown fault model accepted")
	}
	for _, name := range []string{"edge-drop", "crash-core", "objective-noise"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered model %q", err, name)
		}
	}
}

func TestE16RestrictedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	e, _ := ByID("E16")
	tb, err := e.Run(Config{Seed: 2, Scale: 0.02, FaultModels: []string{"edge-drop"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] != "none" && row[0] != "edge-drop" {
			t.Fatalf("restricted sweep ran model %q: %v", row[0], row)
		}
	}
}
