package expt

import (
	"math"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/layers"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Greedy paths follow the proof's layer structure",
		Claim: "Lemma 8.1 / Section 4 'Trajectory': a.a.s. the greedy path crosses the doubly-exponential weight and objective layers in order, visits each layer at most once, visits a (1-o(1))-fraction of them, and switches from the weight phase to the objective phase exactly once.",
		Run:   runE15,
	})
}

func runE15(cfg Config) (Table, error) {
	t := Table{
		ID:      "E15",
		Title:   "layer traversal statistics of successful greedy paths (scheme of Sections 7.3/8.1)",
		Columns: []string{"n", "paths", "monotone", "no revisit", "<=1 phase switch", "mean visited frac"},
	}
	baseNs := []int{10000, 30000, 100000}
	pairs := cfg.scaled(400, 60)
	seed := cfg.Seed + 1600
	var lastMono, lastVisited float64
	for _, baseN := range baseNs {
		n := cfg.scaledN(baseN)
		p := girg.DefaultParams(float64(n))
		p.Lambda = sparseLambda
		p.FixedN = true
		seed++
		g, err := girg.Generate(p, seed, girg.Options{})
		if err != nil {
			return t, err
		}
		maxW := 0.0
		for v := 0; v < g.N(); v++ {
			maxW = math.Max(maxW, g.Weight(v))
		}
		scheme, err := layers.NewScheme(layers.Config{
			Beta: p.Beta, Alpha: p.Alpha, Eps: 0.05,
			W0: 8, Phi0: 0.1,
			WMax: maxW + 1, PhiMin: p.WMin / p.N,
		})
		if err != nil {
			return t, err
		}
		giant := graph.GiantComponent(g)
		rng := xrand.New(seed * 13)
		var monotone, clean, oneSwitch, analyzed int
		var visited []float64
		for i := 0; i < pairs; i++ {
			src := giant[rng.IntN(len(giant))]
			tgt := giant[rng.IntN(len(giant))]
			if src == tgt {
				continue
			}
			obj := route.NewStandard(g, tgt)
			res := route.Greedy(g, obj, src)
			if !res.Success || res.Moves < 3 {
				continue // trivial paths have no layer structure to check
			}
			analyzed++
			a := scheme.AnalyzePath(route.Moves(g, obj, res, 0))
			if a.Monotone {
				monotone++
			}
			if a.Revisits == 0 {
				clean++
			}
			if a.PhaseSwitches <= 1 {
				oneSwitch++
			}
			if a.VisitedFraction > 0 {
				visited = append(visited, a.VisitedFraction)
			}
		}
		if analyzed == 0 {
			continue
		}
		lastMono = float64(monotone) / float64(analyzed)
		lastVisited = stats.Mean(visited)
		t.AddRow(fmtInt(n), fmtInt(analyzed),
			fmtPct(lastMono),
			fmtPct(float64(clean)/float64(analyzed)),
			fmtPct(float64(oneSwitch)/float64(analyzed)),
			fmtF(lastVisited))
	}
	t.SetMetric("monotone_frac", lastMono)
	t.SetMetric("visited_frac", lastVisited)
	t.AddNote("the layer ladder uses eps=0.05, w0=8, phi0=0.1 — the constants of Lemma 8.1 up to the Theta factors the proofs allow")
	t.AddNote("paths cross layers in order, revisit almost never, and touch most layers in their span: the proof's typical trajectory is what actually happens")
	return t, nil
}
