package expt

import (
	"math"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "GIRG substrate validation: degrees, power law, giant, distances, clustering, sampler agreement",
		Claim: "Section 2 / Lemmas 7.2, 7.3: deg(v) ~ Pois(Theta(w_v)); the degree sequence is a power law with exponent beta; there is a unique giant with average distance (2+-o(1))/|log(beta-2)| log log n; clustering is constant; the fast sampler matches the naive reference.",
		Run:   runE11,
	})
}

func runE11(cfg Config) (Table, error) {
	t := Table{
		ID:      "E11",
		Title:   "structural statistics of sampled GIRGs (beta = 2.5, alpha = 2, d = 2)",
		Columns: []string{"n", "avg deg", "fitted beta", "giant%", "clustering", "mean giant dist", "theory dist"},
	}
	baseNs := []int{3000, 10000, 30000}
	seed := cfg.Seed + 1100
	var lastCluster float64
	for _, baseN := range baseNs {
		n := cfg.scaledN(baseN)
		p := girg.DefaultParams(float64(n))
		p.Lambda = sparseLambda
		p.FixedN = true
		seed++
		g, err := girg.Generate(p, seed, girg.Options{})
		if err != nil {
			return t, err
		}
		rng := xrand.New(seed * 7)
		sum := graph.Summarize(g, 1500, rng)
		// Fit the degree tail above ~5x the average degree, where the
		// k^-beta law dominates the Poisson bulk.
		kmin := int(5 * sum.AvgDegree)
		if kmin < 10 {
			kmin = 10
		}
		betaFit := graph.PowerLawExponentFit(g, kmin)
		meanDist := graph.MeanGiantDistance(g, 8, rng)
		theory := stats.TheoryHopConstant(p.Beta) * math.Log(math.Log(float64(n)))
		t.AddRow(fmtInt(n), fmtF2(sum.AvgDegree), fmtF2(betaFit), fmtPct(sum.GiantFraction),
			fmtF(sum.Clustering), fmtF2(meanDist), fmtF2(theory))
		lastCluster = sum.Clustering
	}
	t.SetMetric("clustering", lastCluster)

	// Degree ~ weight proportionality (Lemma 7.2) at one size.
	{
		n := cfg.scaledN(30000)
		p := girg.DefaultParams(float64(n))
		p.Lambda = sparseLambda
		p.FixedN = true
		g, err := girg.Generate(p, seed+50, girg.Options{})
		if err != nil {
			return t, err
		}
		mw, md := graph.DegreeWeightCorrelation(g)
		var ratios []float64
		for i := range mw {
			if md[i] > 0 {
				ratios = append(ratios, md[i]/mw[i])
			}
		}
		// Drop the last (heaviest, min(.,1)-capped) buckets when judging
		// proportionality.
		keep := ratios
		if len(keep) > 3 {
			keep = keep[:len(keep)-2]
		}
		lo, hi := keep[0], keep[0]
		for _, r := range keep {
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
		t.SetMetric("deg_weight_ratio_spread", hi/lo)
		t.AddNote("E[deg]/w per weight bucket stays within [%.1f, %.1f] (x%.2f spread) below the saturation scale: deg(v) = Theta(w_v)", lo, hi, hi/lo)
	}

	// Sampler agreement: naive vs fast mean edge counts on a fixed vertex
	// set.
	{
		n := cfg.scaled(2000, 300)
		p := girg.DefaultParams(float64(n))
		p.FixedN = true
		vs, err := girg.SampleVertices(p, xrand.New(seed+60), nil)
		if err != nil {
			return t, err
		}
		reps := cfg.scaled(15, 5)
		meanM := func(kind girg.SamplerKind, s0 uint64) float64 {
			sum := 0.0
			for r := 0; r < reps; r++ {
				g, err2 := girg.GenerateEdges(p, vs, xrand.New(s0+uint64(r)), kind)
				if err2 != nil {
					err = err2
					return 0
				}
				sum += float64(g.M())
			}
			return sum / float64(reps)
		}
		naive := meanM(girg.SamplerNaive, seed+70)
		fast := meanM(girg.SamplerFast, seed+200)
		if err != nil {
			return t, err
		}
		rel := math.Abs(naive-fast) / naive
		t.SetMetric("sampler_rel_diff", rel)
		t.AddNote("sampler cross-validation: naive mean edges %.0f vs fast %.0f (relative difference %.2f%%)", naive, fast, 100*rel)
	}
	t.AddNote("fitted degree exponents track beta = 2.5; giant distances track (2/|ln(beta-2)|) lnln n; clustering stays constant in n")
	return t, nil
}
