package expt

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
)

// FormatCSV renders the table as RFC-4180 CSV (header row + data rows).
// Notes and metrics are appended as comment-style rows prefixed with "#".
func (t Table) FormatCSV() (string, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(t.Columns); err != nil {
		return "", fmt.Errorf("expt: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return "", fmt.Errorf("expt: csv row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", fmt.Errorf("expt: csv flush: %w", err)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&buf, "# %s\n", n)
	}
	return buf.String(), nil
}

// tableJSON is the stable JSON shape of a table.
type tableJSON struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// FormatJSON renders the table as indented JSON.
func (t Table) FormatJSON() (string, error) {
	out, err := json.MarshalIndent(tableJSON{
		ID:      t.ID,
		Title:   t.Title,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
		Metrics: t.Metrics,
	}, "", "  ")
	if err != nil {
		return "", fmt.Errorf("expt: json: %w", err)
	}
	return string(out) + "\n", nil
}
