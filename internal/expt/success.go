package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Greedy routing success probability across n, beta, alpha",
		Claim: "Theorem 3.1: greedy routing succeeds with probability Omega(1), robustly in all model parameters; Section 4: empirical success rates are high.",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Failure probability decays exponentially in wmin",
		Claim: "Theorem 3.2(i): under (EP3) greedy routing fails with probability O(exp(-wmin^Omega(1))).",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Success probability grows with the endpoint weights",
		Claim: "Theorem 3.2(ii): if min{ws,wt} = omega(1), greedy routing succeeds a.a.s.; failure decays polynomially in min{ws,wt}.",
		Run:   runE3,
	})
}

func runE1(cfg Config) (Table, error) {
	t := Table{
		ID:      "E1",
		Title:   "greedy success probability (pairs sampled in the giant component)",
		Columns: []string{"n", "beta", "alpha", "giant%", "success [95% CI]", "mean hops"},
	}
	baseNs := []int{1000, 3000, 10000, 30000}
	betas := []float64{2.2, 2.5, 2.8}
	alphas := []float64{1.5, math.Inf(1)}
	pairs := cfg.scaled(400, 40)
	var minSuccess float64 = 1
	seed := cfg.Seed
	for _, alpha := range alphas {
		for _, beta := range betas {
			for _, baseN := range baseNs {
				n := cfg.scaledN(baseN)
				p := girg.DefaultParams(float64(n))
				p.Beta = beta
				p.Alpha = alpha
				// Calibrate the kernel to average degree ~10 so every
				// (beta, alpha) cell is compared at the same realistic
				// density (the dense lambda=1 kernel makes routing
				// trivially easy; a fixed sparse lambda leaves the
				// threshold kernel subcritical).
				lam, err := girg.LambdaForDegree(p, 10)
				if err != nil {
					return t, err
				}
				p.Lambda = lam
				p.FixedN = true
				seed++
				nw, err := core.NewGIRG(p, seed, girg.Options{})
				if err != nil {
					return t, err
				}
				rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 31})
				if err != nil {
					return t, err
				}
				giantFrac := float64(len(nw.Giant())) / float64(nw.Graph.N())
				t.AddRow(fmtInt(n), fmtF2(beta), alphaLabel(alpha), fmtPct(giantFrac),
					fmtProp(rep.Success.P, rep.Success.Lo, rep.Success.Hi), fmtF2(rep.MeanHops))
				if rep.Success.P < minSuccess {
					minSuccess = rep.Success.P
				}
			}
		}
	}
	t.SetMetric("min_success", minSuccess)
	t.AddNote("Omega(1) success: minimum observed success rate across all parameter cells is %.3f", minSuccess)
	return t, nil
}

func alphaLabel(a float64) string {
	if math.IsInf(a, 1) {
		return "inf"
	}
	return fmtF2(a)
}

func runE2(cfg Config) (Table, error) {
	t := Table{
		ID:      "E2",
		Title:   "greedy failure rate vs wmin (EP3 kernel, whole-graph pairs)",
		Columns: []string{"wmin", "avg deg", "failure [95% CI]", "-ln(failure)"},
	}
	n := cfg.scaledN(30000)
	pairs := cfg.scaled(1500, 150)
	wmins := []float64{0.5, 0.75, 1, 1.5, 2, 3, 4}
	var xs, fails []float64
	seed := cfg.Seed + 100
	// Average each row over several independent graphs: degree and failure
	// estimates on a single scale-free graph are dominated by hub luck
	// (E[W^2] is infinite for beta < 3).
	const graphsPerRow = 3
	for _, wmin := range wmins {
		p := girg.DefaultParams(float64(n))
		p.WMin = wmin
		// Sparse kernel so the minimum expected degree is Theta(wmin) on a
		// human scale; failures then come from exactly the start/end
		// effects Theorem 3.2 bounds.
		p.Lambda = 0.005
		p.FixedN = true
		failures, attempts := 0, 0
		avgDeg := 0.0
		for rep := 0; rep < graphsPerRow; rep++ {
			seed++
			nw, err := core.NewGIRG(p, seed, girg.Options{})
			if err != nil {
				return t, err
			}
			// Pairs from the whole graph: the theorem makes no
			// same-component assumption, and isolated targets are a
			// legitimate failure mode that vanishes as wmin grows.
			r, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 17, WholeGraph: true})
			if err != nil {
				return t, err
			}
			failures += r.Attempts - len(r.Hops)
			attempts += r.Attempts
			avgDeg += 2 * float64(nw.Graph.M()) / float64(nw.Graph.N())
		}
		avgDeg /= graphsPerRow
		prop := stats.NewProportion(failures, attempts)
		fail := prop.P
		lnf := "inf"
		if fail > 0 {
			lnf = fmtF2(-math.Log(fail))
			xs = append(xs, wmin)
			fails = append(fails, fail)
		}
		t.AddRow(fmtF2(wmin), fmtF2(avgDeg), fmtProp(prop.P, prop.Lo, prop.Hi), lnf)
	}
	if len(xs) >= 3 {
		rate, pre, r2 := stats.FitExpDecay(xs, fails)
		t.SetMetric("decay_rate", rate)
		t.AddNote("exponential fit: failure ~ %.2f * exp(-%.2f * wmin), R^2(log) = %.3f", pre, rate, r2)
		if rate > 0 {
			t.AddNote("verdict: failure decays exponentially in wmin as Theorem 3.2(i) predicts")
		}
	}
	return t, nil
}

func runE3(cfg Config) (Table, error) {
	t := Table{
		ID:      "E3",
		Title:   "greedy success vs planted endpoint weight w = ws = wt",
		Columns: []string{"w", "success [95% CI]", "mean hops"},
	}
	n := cfg.scaledN(10000)
	reps := cfg.scaled(150, 20)
	weights := []float64{1, 2, 4, 8, 16, 32}
	// One planted pair per weight class, all in one graph per repetition:
	// s_k at (0.1, 0.1+k*0.02), t_k at (0.6, 0.6+k*0.02), far apart on the
	// torus. Each rep resamples the whole graph (the randomness of
	// Theorem 3.2 is over the graph around the fixed s and t).
	var planted []girg.Plant
	for k, w := range weights {
		dy := float64(k) * 0.02
		planted = append(planted,
			girg.Plant{Pos: []float64{0.1, 0.1 + dy}, W: w},
			girg.Plant{Pos: []float64{0.6, 0.6 + dy}, W: w},
		)
	}
	// One graph per repetition; repetitions are independent and run in
	// parallel (each seeded by its index).
	type repResult struct {
		success [6]bool
		moves   [6]int
		err     error
	}
	results := make([]repResult, reps)
	par.ForEach(reps, 0, func(r int) {
		p := girg.DefaultParams(float64(n))
		p.Lambda = sparseLambda
		p.FixedN = true
		g, err := girg.Generate(p, cfg.Seed+200+uint64(r), girg.Options{Planted: planted})
		if err != nil {
			results[r].err = err
			return
		}
		for k := range weights {
			s, tgt := 2*k, 2*k+1
			res := route.Greedy(g, route.NewStandard(g, tgt), s)
			results[r].success[k] = res.Success
			results[r].moves[k] = res.Moves
		}
	})
	succ := make([]int, len(weights))
	hops := make([][]float64, len(weights))
	for _, rr := range results {
		if rr.err != nil {
			return t, rr.err
		}
		for k := range weights {
			if rr.success[k] {
				succ[k]++
				hops[k] = append(hops[k], float64(rr.moves[k]))
			}
		}
	}
	for k, w := range weights {
		pr := stats.NewProportion(succ[k], reps)
		t.AddRow(fmt.Sprintf("%g", w), fmtProp(pr.P, pr.Lo, pr.Hi), fmtF2(stats.Mean(hops[k])))
	}
	lo := stats.NewProportion(succ[0], reps).P
	hi := stats.NewProportion(succ[len(weights)-1], reps).P
	t.SetMetric("success_w1", lo)
	t.SetMetric("success_wmax", hi)
	t.AddNote("success grows from %.3f at w=1 to %.3f at w=%g; Theorem 3.2(ii) predicts convergence to 1", lo, hi, weights[len(weights)-1])
	return t, nil
}
