package expt

import (
	"math"

	"repro/internal/chunglu"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Geometry is necessary: Chung-Lu control and weight-only routing",
		Claim: "Section 1.1(2): geometry is what gives GIRGs constant clustering, and the geometric coordinates are what greedy routing navigates by — the same weights without geometry (Chung-Lu) have vanishing clustering, and routing by weight alone finds almost no targets.",
		Run:   runE14,
	})
}

func runE14(cfg Config) (Table, error) {
	t := Table{
		ID:      "E14",
		Title:   "GIRG vs Chung-Lu (same weights, no geometry): clustering and routability",
		Columns: []string{"model", "n", "avg deg", "clustering", "phi-greedy success", "weight-only success"},
	}
	baseNs := []int{3000, 10000, 30000}
	pairs := cfg.scaled(250, 40)
	seed := cfg.Seed + 1500
	var girgCluster, clCluster float64
	var weightOnly float64
	// Weight-only routing success is dominated by whether the top hub of a
	// particular graph happens to neighbor the sampled targets, so each
	// GIRG row averages over several independent graphs.
	const graphsPerRow = 3
	for _, baseN := range baseNs {
		n := cfg.scaledN(baseN)

		// GIRG with the standard sparse kernel.
		gp := girg.DefaultParams(float64(n))
		gp.Lambda = sparseLambda
		gp.FixedN = true
		var avgDeg, phiSucc, weightSucc, cluster float64
		for rep := 0; rep < graphsPerRow; rep++ {
			seed++
			gg, err := girg.Generate(gp, seed, girg.Options{})
			if err != nil {
				return t, err
			}
			cluster += graph.MeanClustering(gg, 2000, xrand.New(seed*7))
			ps, ws := routingSuccess(gg, pairs, seed*11)
			phiSucc += ps
			weightSucc += ws
			avgDeg += 2 * float64(gg.M()) / float64(gg.N())
		}
		avgDeg /= graphsPerRow
		phiSucc /= graphsPerRow
		weightSucc /= graphsPerRow
		girgCluster = cluster / graphsPerRow
		weightOnly = weightSucc
		t.AddRow("girg", fmtInt(n), fmtF2(avgDeg),
			fmtF(girgCluster), fmtPct(phiSucc), fmtPct(weightSucc))

		// Chung-Lu with the same weight law.
		cp := chunglu.Params{N: n, Beta: gp.Beta, WMin: gp.WMin}
		seed++
		cg, err := chunglu.Generate(cp, seed)
		if err != nil {
			return t, err
		}
		clCluster = graph.MeanClustering(cg, 2000, xrand.New(seed*7))
		t.AddRow("chung-lu", fmtInt(n), fmtF2(2*float64(cg.M())/float64(cg.N())),
			fmtF(clCluster), "n/a (no geometry)", "n/a")
	}
	t.SetMetric("girg_clustering", girgCluster)
	t.SetMetric("chunglu_clustering", clCluster)
	t.SetMetric("weight_only_success", weightOnly)
	t.AddNote("clustering: GIRG stays constant (%.3f at the largest size) while Chung-Lu's vanishes (%.4f) — locality creates community structure", girgCluster, clCluster)
	t.AddNote("routing a GIRG by weight alone (ignore positions, always climb to better-connected people) delivers %.1f%% — both ingredients of phi are needed, complementing E10's geometry-only column", 100*weightOnly)
	return t, nil
}

// routingSuccess routes giant pairs on g under (a) the standard phi and (b)
// a weight-only objective that ignores geometry entirely.
func routingSuccess(g *graph.Graph, pairs int, seed uint64) (phi, weightOnly float64) {
	giant := graph.GiantComponent(g)
	if len(giant) < 2 {
		return math.NaN(), math.NaN()
	}
	rng := xrand.New(seed)
	phiHits, weightHits, attempts := 0, 0, 0
	for attempts < pairs {
		s := giant[rng.IntN(len(giant))]
		tgt := giant[rng.IntN(len(giant))]
		if s == tgt {
			continue
		}
		attempts++
		if route.Greedy(g, route.NewStandard(g, tgt), s).Success {
			phiHits++
		}
		if route.Greedy(g, weightOnlyObjective(g, tgt), s).Success {
			weightHits++
		}
	}
	return float64(phiHits) / float64(attempts), float64(weightHits) / float64(attempts)
}

// weightOnlyObjective scores vertices by weight alone — Milgram's
// instruction reduced to "forward to your best-connected acquaintance".
func weightOnlyObjective(g *graph.Graph, tgt int) route.Objective {
	return route.Objective{Target: tgt, Score: func(v int) float64 {
		if v == tgt {
			return math.Inf(1)
		}
		return g.Weight(v)
	}}
}
