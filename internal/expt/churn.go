package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/route"
)

// E17 is the churn sweep: it layers deterministic join/leave churn over one
// sparse GIRG as a copy-on-write overlay (the live-graph machinery of
// internal/mutate, driven here without a journal) and measures how each
// routing protocol degrades. The paper's protocols are local and oblivious
// — a step reads only the current vertex's adjacency and the target's
// coordinates — so two predictions are testable: joins are free (a vertex
// wired to geometrically sensible contacts scores under the same phi as
// base vertices and is routable immediately, no global re-index), and
// leaves cost only the walks that would have crossed a tombstoned vertex,
// degrading smoothly in the leave rate rather than collapsing.
//
// Churn streams are pure-hash Poisson: every random choice is a function of
// (seed, tick, kind, index) through obs.Hash64, so the stream — and with it
// the overlay fingerprint and the whole table — is bit-identical across
// runs, worker counts and GOMAXPROCS.

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Churn sweep: routing over live overlays under join/leave churn",
		Claim: "Section 1 + remark after Theorem 3.5: greedy-style protocols are local and oblivious, so joins are routable immediately and leaves degrade delivery smoothly (only walks crossing a tombstone fail).",
		Run:   runE17,
	})
}

// e17Ticks is the number of batches a churn stream is applied in: each tick
// draws Poisson(join/e17Ticks) joins and Poisson(leave/e17Ticks) leaves and
// applies them as one overlay edit, mirroring the batched mutation log.
const e17Ticks = 64

func runE17(cfg Config) (Table, error) {
	t := Table{
		ID:      "E17",
		Title:   "success, hops and stretch per join/leave rate × protocol (rates are expected events as a fraction of n)",
		Columns: []string{"join", "leave", "protocol", "success [95% CI]", "mean hops", "stretch", "dead-end", "live n", "overlay Δ"},
	}
	n := cfg.scaledN(20000)
	pairs := cfg.scaled(300, 40)
	p := girg.DefaultParams(float64(n))
	p.Lambda = sparseLambda
	p.FixedN = true
	g, err := girg.Generate(p, cfg.Seed+1700, girg.Options{})
	if err != nil {
		return t, err
	}
	protocols := []core.Protocol{core.ProtoGreedy, core.ProtoPhiDFS}
	maxHops := 8 * n

	cells := []struct{ join, leave float64 }{
		{0, 0}, // baseline: empty overlay, base fast paths
		{0.05, 0},
		{0, 0.05},
		{0.05, 0.05},
		{0.15, 0.15},
	}
	for _, cell := range cells {
		ov, err := churnOverlay(g, cfg.Seed+1701, cell.join, cell.leave)
		if err != nil {
			return t, err
		}
		st := ov.Stats()
		liveN := ov.N() - st.RemovedVertices
		nw := &core.Network{
			Graph: g,
			Label: fmt.Sprintf("churn(j=%s,l=%s)", fmtF2(cell.join), fmtF2(cell.leave)),
			NewObjective: func(t int) route.Objective {
				return route.NewStandard(g, t)
			},
			StandardPhi: true,
		}
		if err := nw.SetOverlay(ov); err != nil {
			return t, err
		}
		for _, proto := range protocols {
			rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
				Pairs: pairs, Seed: cfg.Seed + 1702, Protocol: proto,
				MaxHops: maxHops, ComputeStretch: true,
				Checkpoint:    cfg.Checkpoint,
				CheckpointKey: fmt.Sprintf("E17/j%s-l%s/%s", fmtF2(cell.join), fmtF2(cell.leave), proto),
			})
			if err != nil {
				return t, err
			}
			t.AddRow(fmtF2(cell.join), fmtF2(cell.leave), string(proto),
				fmtProp(rep.Success.P, rep.Success.Lo, rep.Success.Hi),
				fmtF2(rep.MeanHops), fmtF2(rep.MeanStretch),
				fmtInt(rep.Failures[route.FailDeadEnd]),
				fmtInt(liveN), fmtInt(ov.DeltaSize()))
			t.SetMetric(fmt.Sprintf("success_j%s_l%s_%s", fmtF2(cell.join), fmtF2(cell.leave), proto), rep.Success.P)
		}
	}

	get := func(join, leave float64, proto core.Protocol) (float64, bool) {
		v, ok := t.Metrics[fmt.Sprintf("success_j%s_l%s_%s", fmtF2(join), fmtF2(leave), proto)]
		return v, ok
	}
	if base, ok := get(0, 0, core.ProtoGreedy); ok && base > 0 {
		if j, ok := get(0.05, 0, core.ProtoGreedy); ok {
			t.AddNote("joins are free: +5%% joined vertices leave greedy at %.1f%% of its churn-free delivery — new vertices route under the same phi the moment their batch commits", 100*j/base)
		}
		if l, ok := get(0, 0.05, core.ProtoGreedy); ok {
			t.AddNote("leaves degrade smoothly: tombstoning 5%% of vertices keeps %.1f%% of churn-free deliveries (lost walks die as dead ends at tombstones or route to departed targets)", 100*l/base)
		}
	}
	if gd, ok1 := get(0.15, 0.15, core.ProtoGreedy); ok1 {
		if pd, ok2 := get(0.15, 0.15, core.ProtoPhiDFS); ok2 {
			t.AddNote("under symmetric 15%% churn patching delivers %.1f%% vs greedy's %.1f%%: backtracking recovers walks that dead-end at tombstones, as it does for sampled dead ends", 100*pd, 100*gd)
		}
	}
	t.AddNote("churn streams are pure-hash Poisson over %d ticks: the overlay fingerprint and every row are bit-identical across runs and GOMAXPROCS", e17Ticks)
	return t, nil
}

// churnOverlay builds the live overlay a churn stream leaves behind:
// joinRate·n expected joins and leaveRate·n expected leaves, Poisson-split
// over e17Ticks batches. A join lands at a hash-uniform torus position with
// a Pareto(tau = 2.5) weight and wires to its 4 nearest live vertices plus
// one hub contact — the probed candidate maximizing the GIRG connection
// propensity w_u/dist^d — so new vertices get both the local links greedy
// descends and a long-range link into the weight core. A leave tombstones a
// hash-chosen live vertex. All randomness is obs.Hash64 of (seed, tick,
// kind, index): the stream is a pure function of its arguments.
func churnOverlay(g *graph.Graph, seed uint64, joinRate, leaveRate float64) (*graph.Overlay, error) {
	const (
		kindJoinCount = iota
		kindLeaveCount
		kindPos
		kindWeight
		kindHubProbe
		kindLeavePick
	)
	space := g.Space()
	dim := space.Dim()
	n := float64(g.N())
	ov := graph.NewOverlay(g)
	for tick := uint64(0); tick < e17Ticks; tick++ {
		joins := poissonHash(joinRate*n/e17Ticks, seed, tick, kindJoinCount)
		leaves := poissonHash(leaveRate*n/e17Ticks, seed, tick, kindLeaveCount)
		if joins == 0 && leaves == 0 {
			continue
		}
		e := ov.Edit()
		for j := uint64(0); j < uint64(joins); j++ {
			pos := make([]float64, dim)
			for d := range pos {
				pos[d] = hashU(seed, tick, kindPos, j, uint64(d))
			}
			// Pareto(tau = 2.5) weight, capped at the natural GIRG cutoff
			// sqrt(n) so one hash draw cannot dominate the weight core.
			w := g.WMin() * math.Pow(1-hashU(seed, tick, kindWeight, j), -1/1.5)
			if wcap := g.WMin() * math.Sqrt(n); w > wcap {
				w = wcap
			}
			id, err := e.AddVertex(pos, w)
			if err != nil {
				return nil, err
			}
			for _, u := range joinContacts(ov, space, pos, seed, tick, j, kindHubProbe) {
				if u == id || e.Tombstoned(u) || e.HasEdge(id, u) {
					continue
				}
				if err := e.AddEdge(id, u); err != nil {
					return nil, err
				}
			}
		}
		for l, picked := uint64(0), 0; picked < leaves && l < uint64(leaves)*32; l++ {
			v := int(obs.Hash64(seed, tick, kindLeavePick, l) % uint64(ov.N()))
			if e.Tombstoned(v) {
				continue
			}
			if err := e.RemoveVertex(v); err != nil {
				return nil, err
			}
			picked++
		}
		ov = e.Finish()
	}
	return ov, nil
}

// joinContacts picks the link targets for a joining vertex: its 4 nearest
// live vertices in the pre-tick overlay (an O(liveN) scan — the local links
// greedy routing descends) plus the best of 64 hash probes by the GIRG
// propensity w_u/dist^d (the long-range hub contact). Candidates come from
// the overlay as it stood before this tick, so same-tick joiners never
// reference each other — exactly the ids a real join batch could name.
func joinContacts(ov *graph.Overlay, space torusSpace, pos []float64, seed, tick, j uint64, kindProbe int) []int {
	const (
		nearK  = 4
		probes = 64
	)
	type cand struct {
		v int
		d float64
	}
	nearest := make([]cand, 0, nearK+1)
	for v := 0; v < ov.N(); v++ {
		if ov.Tombstoned(v) {
			continue
		}
		d := space.Dist(pos, ov.Pos(v))
		i := len(nearest)
		for i > 0 && nearest[i-1].d > d {
			i--
		}
		if i < nearK {
			nearest = append(nearest, cand{})
			copy(nearest[i+1:], nearest[i:])
			nearest[i] = cand{v, d}
			if len(nearest) > nearK {
				nearest = nearest[:nearK]
			}
		}
	}
	out := make([]int, 0, nearK+1)
	for _, c := range nearest {
		out = append(out, c.v)
	}
	hub, best := -1, math.Inf(-1)
	dim := float64(space.Dim())
	for p := uint64(0); p < probes; p++ {
		v := int(obs.Hash64(seed, tick, uint64(kindProbe), j, p) % uint64(ov.N()))
		if ov.Tombstoned(v) {
			continue
		}
		d := space.Dist(pos, ov.Pos(v))
		if d == 0 {
			continue
		}
		if score := ov.Weight(v) / math.Pow(d, dim); score > best {
			hub, best = v, score
		}
	}
	if hub >= 0 {
		out = append(out, hub)
	}
	return out
}

// torusSpace is the slice of torus.Space joinContacts needs; the indirection
// keeps the helper trivially testable.
type torusSpace interface {
	Dim() int
	Dist(x, y []float64) float64
}

// hashU maps a hash tuple to a uniform in [0, 1) with 53 bits of precision.
func hashU(vals ...uint64) float64 {
	return float64(obs.Hash64(vals...)>>11) / float64(1<<53)
}

// poissonHash draws Poisson(lambda) by Knuth inversion over the pure-hash
// uniform stream keyed by (seed, tick, kind) — deterministic and
// allocation-free, adequate for the per-tick lambdas the sweep uses.
func poissonHash(lambda float64, seed, tick uint64, kind int) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= hashU(seed, tick, uint64(kind), uint64(k), 0xBD)
		if p <= limit {
			return k
		}
		k++
	}
}
