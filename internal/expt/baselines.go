package expt

import (
	"math"

	"repro/internal/core"
	"repro/internal/girg"
	"repro/internal/kleinberg"
	"repro/internal/route"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Kleinberg baseline: O(log^2 n) lattice routing, fragile exponent, and failure without the lattice",
		Claim: "Section 1.1: Kleinberg's model routes in O(log^2 n) only at the critical exponent, needs the perfect lattice (random positions make greedy fail w.h.p.), and is much slower than GIRG's Theta(log log n).",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Degree-agnostic geometric routing vs weight-aware greedy on GIRGs",
		Claim: "Section 4: purely geometric routing is far less robust than the paper's phi-greedy routing, failing badly for parts of the beta range.",
		Run:   runE10,
	})
}

func runE9(cfg Config) (Table, error) {
	t := Table{
		ID:      "E9",
		Title:   "lattice vs continuum vs GIRG routing",
		Columns: []string{"model", "n", "success", "mean hops", "log2(n)^2/4", "lnln-theory"},
	}
	pairs := cfg.scaled(250, 40)
	seed := cfg.Seed + 900

	// (a) Lattice model at the critical exponent r = 2 across sizes: hops
	// grow polylogarithmically.
	var latticeHops []float64
	sides := []int{32, 64, 128, 256}
	for _, side := range sides {
		l := side
		if cfg.Scale < 1 {
			l = int(float64(side) * math.Sqrt(cfg.Scale))
			if l < 16 {
				l = 16
			}
		}
		seed++
		nw, err := core.NewKleinbergGrid(kleinberg.GridParams{L: l, Q: 1, R: 2}, seed)
		if err != nil {
			return t, err
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 3})
		if err != nil {
			return t, err
		}
		n := l * l
		log2n := math.Log2(float64(n))
		t.AddRow("kleinberg r=2", fmtInt(n), fmtPct(rep.Success.P), fmtF2(rep.MeanHops),
			fmtF2(log2n*log2n/4), "-")
		latticeHops = append(latticeHops, rep.MeanHops)
	}

	// (b) Fragile exponent: same grid size, r away from 2.
	fragileL := 128
	if cfg.Scale < 1 {
		fragileL = int(128 * math.Sqrt(cfg.Scale))
		if fragileL < 16 {
			fragileL = 16
		}
	}
	for _, r := range []float64{1.0, 2.0, 3.0, 4.0} {
		seed++
		nw, err := core.NewKleinbergGrid(kleinberg.GridParams{L: fragileL, Q: 1, R: r}, seed)
		if err != nil {
			return t, err
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 3})
		if err != nil {
			return t, err
		}
		t.AddRow(labelR(r), fmtInt(fragileL*fragileL), fmtPct(rep.Success.P), fmtF2(rep.MeanHops), "-", "-")
		if r == 2 {
			t.SetMetric("lattice_hops_r2", rep.MeanHops)
		} else if r == 4 {
			t.SetMetric("lattice_hops_r4", rep.MeanHops)
		}
	}

	// (c) Continuum variant (random positions, no lattice): greedy fails.
	nCont := cfg.scaledN(10000)
	seed++
	cont, err := core.NewKleinbergContinuum(kleinberg.ContinuumParams{N: nCont, Q: 1, AlphaDecay: 1}, seed)
	if err != nil {
		return t, err
	}
	crep, err := core.RunMilgramCtx(cfg.Context(), cont, core.MilgramConfig{Pairs: pairs, Seed: seed * 3})
	if err != nil {
		return t, err
	}
	t.AddRow("kleinberg continuum", fmtInt(nCont), fmtPct(crep.Success.P), fmtF2(crep.MeanHops), "-", "-")
	t.SetMetric("continuum_success", crep.Success.P)

	// (d) GIRG at matched sizes for contrast (sparse kernel, average
	// degree ~10, comparable to the lattice's 6).
	for _, baseN := range []int{4096, 65536} {
		n := cfg.scaledN(baseN)
		p := girg.DefaultParams(float64(n))
		p.Lambda = sparseLambda
		p.FixedN = true
		seed++
		nw, err := core.NewGIRG(p, seed, girg.Options{})
		if err != nil {
			return t, err
		}
		rep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 3})
		if err != nil {
			return t, err
		}
		theory := stats.TheoryHopConstant(p.Beta) * math.Log(math.Log(float64(n)))
		t.AddRow("girg beta=2.5", fmtInt(n), fmtPct(rep.Success.P), fmtF2(rep.MeanHops), "-", fmtF2(theory))
		t.SetMetric("girg_hops", rep.MeanHops)
	}
	if len(latticeHops) >= 2 {
		t.AddNote("lattice hops grow with n (polylog) while GIRG hops stay near the log log n theory line")
	}
	t.AddNote("continuum success %.1f%%: removing the lattice destroys Kleinberg greedy routing (Section 1.1), while GIRG greedy keeps succeeding", 100*crep.Success.P)
	return t, nil
}

func labelR(r float64) string {
	if r == 2 {
		return "kleinberg r=2 (crit)"
	}
	return "kleinberg r=" + fmtF2(r)
}

func runE10(cfg Config) (Table, error) {
	t := Table{
		ID:      "E10",
		Title:   "success of geometric-only vs phi-greedy routing on GIRGs across beta",
		Columns: []string{"beta", "greedy phi", "geometric", "phi mean hops", "geom mean hops"},
	}
	n := cfg.scaledN(20000)
	pairs := cfg.scaled(300, 40)
	seed := cfg.Seed + 1000
	var worstGeo, worstPhi float64 = 1, 1
	for _, beta := range []float64{2.1, 2.3, 2.5, 2.7, 2.9} {
		p := girg.DefaultParams(float64(n))
		p.Beta = beta
		p.Lambda = 0.005
		p.FixedN = true
		seed++
		nw, err := core.NewGIRG(p, seed, girg.Options{})
		if err != nil {
			return t, err
		}
		phiRep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{Pairs: pairs, Seed: seed * 5})
		if err != nil {
			return t, err
		}
		geoRep, err := core.RunMilgramCtx(cfg.Context(), nw, core.MilgramConfig{
			Pairs: pairs, Seed: seed * 5,
			Objective: func(tgt int) route.Objective { return route.NewGeometric(nw.Graph, tgt) },
		})
		if err != nil {
			return t, err
		}
		t.AddRow(fmtF2(beta), fmtPct(phiRep.Success.P), fmtPct(geoRep.Success.P),
			fmtF2(phiRep.MeanHops), fmtF2(geoRep.MeanHops))
		if geoRep.Success.P < worstGeo {
			worstGeo = geoRep.Success.P
		}
		if phiRep.Success.P < worstPhi {
			worstPhi = phiRep.Success.P
		}
	}
	t.SetMetric("worst_geometric", worstGeo)
	t.SetMetric("worst_phi", worstPhi)
	t.AddNote("worst-case success across beta: phi-greedy %.3f vs geometric %.3f — weight-awareness is what makes greedy routing robust (Section 4)", worstPhi, worstGeo)
	return t, nil
}
