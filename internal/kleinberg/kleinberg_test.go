package kleinberg

import (
	"math"
	"testing"

	"repro/internal/route"
	"repro/internal/xrand"
)

func TestGridParamsValidate(t *testing.T) {
	if err := (GridParams{L: 10, Q: 1, R: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GridParams{
		{L: 2, Q: 1, R: 2},
		{L: 10, Q: -1, R: 2},
		{L: 10, Q: 1, R: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestGridStructure(t *testing.T) {
	gr, err := GenerateGrid(GridParams{L: 8, Q: 0, R: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.Graph()
	if g.N() != 64 {
		t.Fatalf("N = %d", g.N())
	}
	// Pure torus grid: every vertex has exactly 4 neighbors, 2N edges.
	if g.M() != 128 {
		t.Fatalf("M = %d, want 128", g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestGridLongRangeCount(t *testing.T) {
	gr, err := GenerateGrid(GridParams{L: 16, Q: 2, R: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.Graph()
	// 2N lattice edges plus up to Q*N long-range (dedup may remove a few).
	minM, maxM := 2*g.N()+g.N(), 2*g.N()+2*g.N()
	if g.M() < minM || g.M() > maxM {
		t.Fatalf("M = %d outside [%d, %d]", g.M(), minM, maxM)
	}
}

func TestLatticeDist(t *testing.T) {
	gr, err := GenerateGrid(GridParams{L: 10, Q: 0, R: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		u, v, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 9, 1},   // wrap in x
		{0, 90, 1},  // wrap in y
		{0, 5, 5},   // farthest x on even ring
		{0, 55, 10}, // (5,5)
		{11, 33, 4}, // (1,1) -> (3,3)
		{0, 99, 2},  // (0,0) -> (9,9) wraps to (−1,−1)
		{12, 87, 5}, // (2,1) -> (7,8): dx=5, dy=3 wraps... check below
	}
	// Recompute the last case directly: x: |2-7|=5 -> min(5,5)=5; y: |1-8|=7 -> min(7,3)=3; total 8.
	tests[len(tests)-1].want = 8
	for _, tt := range tests {
		if got := gr.LatticeDist(tt.u, tt.v); got != tt.want {
			t.Errorf("LatticeDist(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
		if got := gr.LatticeDist(tt.v, tt.u); got != tt.want {
			t.Errorf("LatticeDist not symmetric for (%d,%d)", tt.u, tt.v)
		}
	}
}

func TestNodeAtDistanceExact(t *testing.T) {
	// All 4k enumerated nodes must be distinct and at exact distance k.
	gr, err := GenerateGrid(GridParams{L: 20, Q: 0, R: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 5, 9} {
		for _, from := range []int{0, 37, 399} {
			seen := make(map[int]bool)
			for idx := 0; idx < 4*k; idx++ {
				j := nodeAtDistance(20, from, k, idx)
				if seen[j] {
					t.Fatalf("k=%d from=%d: duplicate node %d", k, from, j)
				}
				seen[j] = true
				if d := gr.LatticeDist(from, j); d != k {
					t.Fatalf("k=%d from=%d idx=%d: distance %d", k, from, idx, d)
				}
			}
		}
	}
}

func TestLongRangeDistanceDistribution(t *testing.T) {
	// At R = 2 the ring weight is 4k * k^-2 = 4/k: P(K = k) ~ 1/k, so
	// P(K <= sqrt(maxK)) should be about half of P(K <= maxK) on a log
	// scale. Check the CDF at two points against the analytic law.
	p := GridParams{L: 64, Q: 4, R: 2}
	gr, err := GenerateGrid(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.Graph()
	var dists []int
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if d := gr.LatticeDist(v, int(u)); d > 1 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		t.Fatal("no long-range edges")
	}
	count := func(upTo int) float64 {
		c := 0
		for _, d := range dists {
			if d <= upTo {
				c++
			}
		}
		return float64(c) / float64(len(dists))
	}
	maxK := p.L/2 - 1
	// Analytic CDF at k, conditioned on k >= 2 (distance-1 long-range
	// edges merge with lattice edges and are filtered above):
	// (H(k) - 1) / (H(maxK) - 1) with H harmonic numbers.
	h := func(k int) float64 {
		s := 0.0
		for i := 1; i <= k; i++ {
			s += 1 / float64(i)
		}
		return s
	}
	for _, k := range []int{3, 10} {
		got := count(k)
		want := (h(k) - 1) / (h(maxK) - 1)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("long-range CDF at %d: got %v want %v", k, got, want)
		}
	}
}

func TestGridGreedyAlwaysSucceeds(t *testing.T) {
	// The perfect lattice guarantees greedy progress: success probability 1.
	gr, err := GenerateGrid(GridParams{L: 32, Q: 1, R: 2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	g := gr.Graph()
	rng := xrand.New(7)
	for i := 0; i < 100; i++ {
		s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
		if s == tgt {
			continue
		}
		res := route.Greedy(g, gr.Objective(tgt), s)
		if !res.Success {
			t.Fatalf("lattice greedy failed from %d to %d: %+v", s, tgt, res)
		}
		// Each hop reduces lattice distance.
		for j := 1; j < len(res.Path); j++ {
			if gr.LatticeDist(res.Path[j], tgt) >= gr.LatticeDist(res.Path[j-1], tgt) {
				t.Fatal("greedy hop did not reduce lattice distance")
			}
		}
	}
}

func TestGridRoutingPolylogAtCriticalExponent(t *testing.T) {
	// At R = 2, expected greedy hops are O(log^2 n); far from it the hops
	// blow up polynomially. Compare mean hops at R=2 vs R=0 (uniform
	// long-range, still navigable but slower at this scale... actually R=0
	// yields ~sqrt-ish behavior) on a fixed grid size.
	meanHops := func(r float64, seed uint64) float64 {
		gr, err := GenerateGrid(GridParams{L: 64, Q: 1, R: r}, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := gr.Graph()
		rng := xrand.New(seed + 100)
		sum, cnt := 0.0, 0
		for i := 0; i < 150; i++ {
			s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
			if s == tgt {
				continue
			}
			res := route.Greedy(g, gr.Objective(tgt), s)
			if !res.Success {
				t.Fatal("lattice greedy failed")
			}
			sum += float64(res.Moves)
			cnt++
		}
		return sum / float64(cnt)
	}
	crit := meanHops(2, 8)
	far := meanHops(6, 9) // R=6: long-range edges are all short, ~lattice routing
	if crit >= far {
		t.Fatalf("critical exponent (%v hops) not faster than R=6 (%v hops)", crit, far)
	}
	if far < 20 {
		t.Fatalf("R=6 should degrade toward lattice distance, got %v hops", far)
	}
}

func TestContinuumParamsValidate(t *testing.T) {
	if err := (ContinuumParams{N: 100, Q: 1, AlphaDecay: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ContinuumParams{
		{N: 1, Q: 1, AlphaDecay: 1},
		{N: 100, Q: 0, AlphaDecay: 1},
		{N: 100, Q: 1, AlphaDecay: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestContinuumStructure(t *testing.T) {
	g, err := GenerateContinuum(ContinuumParams{N: 500, Q: 2, AlphaDecay: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Up to Q*N edges (dedup may drop a few), at least Q*N/2 (each node
	// drew Q, duplicates rare).
	if g.M() < 500 || g.M() > 1000 {
		t.Fatalf("M = %d", g.M())
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) == v {
				t.Fatal("self loop")
			}
		}
	}
}

func TestContinuumGreedyFailsOften(t *testing.T) {
	// Section 1.1: without the lattice, greedy routing (by geometric
	// distance) dies in local optima with high probability.
	g, err := GenerateContinuum(ContinuumParams{N: 2000, Q: 1, AlphaDecay: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(12)
	fail := 0
	const pairs = 100
	for i := 0; i < pairs; i++ {
		s, tgt := rng.IntN(g.N()), rng.IntN(g.N())
		if s == tgt {
			continue
		}
		if !route.Greedy(g, route.NewGeometric(g, tgt), s).Success {
			fail++
		}
	}
	if rate := float64(fail) / pairs; rate < 0.5 {
		t.Fatalf("continuum greedy failure rate only %v; expected high", rate)
	}
}

func TestContinuumFavorsCloseEndpoints(t *testing.T) {
	// Long-range endpoints should be strongly biased toward nearby nodes.
	g, err := GenerateContinuum(ContinuumParams{N: 1000, Q: 2, AlphaDecay: 1.5}, 13)
	if err != nil {
		t.Fatal(err)
	}
	space := g.Space()
	near, far := 0, 0
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if space.Dist(g.Pos(v), g.Pos(int(u))) < 0.1 {
				near++
			} else {
				far++
			}
		}
	}
	// A 0.1-ball has 4% of the area; with decay the near share must far
	// exceed that.
	if frac := float64(near) / float64(near+far); frac < 0.3 {
		t.Fatalf("near-edge fraction %v; decay law not biasing", frac)
	}
}

func BenchmarkGenerateGrid64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateGrid(GridParams{L: 64, Q: 1, R: 2}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
