// Package kleinberg implements Kleinberg's small-world lattice model and the
// "noisy positions" continuum variant, the baselines of Section 1.1 of the
// paper. The lattice model shows greedy routing in O(log^2 n) steps at the
// critical exponent and polynomial slowdown away from it (the "fragile
// exponent" shortcoming); the continuum variant — identical long-range edge
// law but random vertex positions instead of a perfect grid — shows greedy
// routing failing outright (the "perfect lattice" shortcoming). Both are
// what experiment E9 compares GIRG routing against.
package kleinberg

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/torus"
	"repro/internal/xrand"
)

// GridParams describes the toroidal lattice model: an L x L grid where each
// node has its four lattice neighbors plus Q independent long-range
// contacts, the contact at lattice (Manhattan) distance k chosen with
// probability proportional to k^-R. Kleinberg's critical exponent is R = 2
// (= the lattice dimension); R != 2 degrades routing polynomially.
type GridParams struct {
	// L is the grid side length; the graph has L*L vertices.
	L int
	// Q is the number of long-range contacts per node.
	Q int
	// R is the decay exponent of the long-range distribution.
	R float64
}

// Validate checks the parameters.
func (p GridParams) Validate() error {
	if p.L < 4 {
		return fmt.Errorf("kleinberg: grid side %d too small", p.L)
	}
	if p.Q < 0 {
		return fmt.Errorf("kleinberg: negative contact count %d", p.Q)
	}
	if p.R < 0 {
		return fmt.Errorf("kleinberg: negative exponent %v", p.R)
	}
	return nil
}

// Grid is a sampled instance of the lattice model.
type Grid struct {
	params GridParams
	g      *graph.Graph
}

// GenerateGrid samples the lattice model. Long-range distances are drawn by
// inverse CDF over the ring sizes (4k nodes at Manhattan distance k on the
// torus), so generation costs O(L^2 * Q) after an O(L) table build.
func GenerateGrid(p GridParams, seed uint64) (*Grid, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	n := p.L * p.L
	space := torus.MustSpace(2)
	pos := torus.NewPositions(space, n)
	for i := 0; i < n; i++ {
		x, y := i%p.L, i/p.L
		pos.Set(i, []float64{(float64(x) + 0.5) / float64(p.L), (float64(y) + 0.5) / float64(p.L)})
	}
	b, err := graph.NewBuilder(n, pos, nil, float64(n), 1)
	if err != nil {
		return nil, err
	}
	// Lattice edges (right and down close the torus).
	for i := 0; i < n; i++ {
		x, y := i%p.L, i/p.L
		b.AddEdge(i, y*p.L+(x+1)%p.L)
		b.AddEdge(i, ((y+1)%p.L)*p.L+x)
	}
	// Cumulative distribution over Manhattan distances k = 1..L/2-1 with
	// weight 4k * k^-R.
	maxK := p.L/2 - 1
	if maxK < 1 {
		maxK = 1
	}
	cdf := make([]float64, maxK+1)
	for k := 1; k <= maxK; k++ {
		cdf[k] = cdf[k-1] + 4*float64(k)*math.Pow(float64(k), -p.R)
	}
	total := cdf[maxK]
	for i := 0; i < n; i++ {
		for q := 0; q < p.Q; q++ {
			k := sampleCDF(cdf, rng.Float64()*total)
			j := nodeAtDistance(p.L, i, k, rng.IntN(4*k))
			if j != i {
				b.AddEdge(i, j)
			}
		}
	}
	return &Grid{params: p, g: b.Finish()}, nil
}

// sampleCDF returns the smallest k with cdf[k] > u.
func sampleCDF(cdf []float64, u float64) int {
	lo, hi := 1, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// nodeAtDistance returns the idx-th node (0 <= idx < 4k) at exact Manhattan
// distance k from node i on the L-torus. The 4k offsets are enumerated as
// (dx, k-|dx|) and (dx, -(k-|dx|)).
func nodeAtDistance(l, i, k, idx int) int {
	x, y := i%l, i/l
	var dx, dy int
	if idx < 2*k {
		dx = idx - k + 1 // in [-k+1, k]
		dy = k - abs(dx)
	} else {
		dx = idx - 2*k - k // in [-k, k-1]
		dy = -(k - abs(dx))
	}
	nx := ((x+dx)%l + l) % l
	ny := ((y+dy)%l + l) % l
	return ny*l + nx
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// Graph exposes the underlying graph.
func (gr *Grid) Graph() *graph.Graph { return gr.g }

// N returns the number of vertices.
func (gr *Grid) N() int { return gr.g.N() }

// LatticeDist returns the toroidal Manhattan distance between nodes u, v.
func (gr *Grid) LatticeDist(u, v int) int {
	l := gr.params.L
	dx := abs(u%l - v%l)
	if l-dx < dx {
		dx = l - dx
	}
	dy := abs(u/l - v/l)
	if l-dy < dy {
		dy = l - dy
	}
	return dx + dy
}

// Objective returns the lattice greedy-routing objective toward t: nodes
// closer in Manhattan distance score higher. This is Kleinberg's
// decentralized algorithm when plugged into route.Greedy.
func (gr *Grid) Objective(t int) route.Objective {
	return route.Objective{Target: t, Score: func(v int) float64 {
		if v == t {
			return math.Inf(1)
		}
		return 1 / float64(gr.LatticeDist(v, t))
	}}
}

// ContinuumParams describes the "noisy positions" variant: n points placed
// uniformly at random on the 2-torus, each with Q long-range edges sampled
// with probability proportional to ||x_u - x_v||^(-2*AlphaDecay) — the same
// edge law as the lattice model (R = 2*AlphaDecay in the grid
// parametrization, with the lattice removed). Section 1.1 argues greedy
// routing fails on this model with high probability, which motivates GIRGs.
type ContinuumParams struct {
	// N is the number of vertices.
	N int
	// Q is the number of long-range edges per node.
	Q int
	// AlphaDecay is the alpha of the dist^(-alpha*d) law with d = 2.
	AlphaDecay float64
}

// Validate checks the parameters.
func (p ContinuumParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("kleinberg: continuum N = %d too small", p.N)
	}
	if p.Q < 1 {
		return fmt.Errorf("kleinberg: continuum Q = %d, need >= 1", p.Q)
	}
	if p.AlphaDecay <= 0 {
		return fmt.Errorf("kleinberg: continuum alpha = %v, need > 0", p.AlphaDecay)
	}
	return nil
}

// GenerateContinuum samples the continuum variant. Endpoint selection is
// exact (cumulative weights over all other vertices), costing O(N^2); keep
// N at most a few tens of thousands.
func GenerateContinuum(p ContinuumParams, seed uint64) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	space := torus.MustSpace(2)
	pos := torus.NewPositions(space, p.N)
	buf := make([]float64, 2)
	for i := 0; i < p.N; i++ {
		buf[0], buf[1] = rng.Float64(), rng.Float64()
		pos.Set(i, buf)
	}
	b, err := graph.NewBuilder(p.N, pos, nil, float64(p.N), 1)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, p.N)
	exp := -2 * p.AlphaDecay
	for u := 0; u < p.N; u++ {
		total := 0.0
		pu := pos.At(u)
		for v := 0; v < p.N; v++ {
			if v != u {
				total += math.Pow(space.Dist(pu, pos.At(v)), exp)
			}
			// The self entry repeats the running total, keeping the array
			// non-decreasing; binary search can then never land on u.
			weights[v] = total
		}
		for q := 0; q < p.Q; q++ {
			u0 := rng.Float64() * total
			v := searchCum(weights, u0)
			if v != u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Finish(), nil
}

// searchCum returns the first index whose cumulative weight exceeds u.
func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
