package plot

import (
	"math"
	"strings"
	"testing"
)

func TestSVGBasic(t *testing.T) {
	p := Plot{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 3, 2}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 2, 4}, Dashed: true},
		},
	}
	out, err := p.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "polyline", "demo", ">a<", ">b<", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG", want)
		}
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&Plot{}).SVG(); err == nil {
		t.Error("empty plot accepted")
	}
	bad := Plot{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	negLog := Plot{LogY: true, Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{-1}}}}
	if _, err := negLog.SVG(); err == nil {
		t.Error("all-negative log plot accepted")
	}
}

func TestSVGLogY(t *testing.T) {
	p := Plot{
		LogY: true,
		Series: []Series{
			{Name: "decay", X: []float64{0, 1, 2, 3}, Y: []float64{1, 0.1, 0.01, 0.001}},
		},
	}
	out, err := p.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "polyline") {
		t.Error("no polyline in log plot")
	}
	// Non-positive points are skipped, not fatal.
	p.Series[0].Y[1] = 0
	if _, err := p.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestSVGMarkersAndSinglePoint(t *testing.T) {
	p := Plot{Series: []Series{
		{Name: "pts", X: []float64{1, 2}, Y: []float64{3, 4}, Markers: true},
		{Name: "single", X: []float64{1.5}, Y: []float64{3.5}},
	}}
	out, err := p.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "<circle") < 3 {
		t.Errorf("expected circles for markers and the singleton point")
	}
}

func TestTicksNice(t *testing.T) {
	ticks := Ticks(0, 10, 6)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Fatalf("tick count %d: %v", len(ticks), ticks)
	}
	for i, tk := range ticks {
		if tk < 0 || tk > 10+1e-9 {
			t.Fatalf("tick %v out of range", tk)
		}
		if i > 0 && ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	// Steps are 1/2/5 x 10^k.
	step := ticks[1] - ticks[0]
	mag := math.Pow(10, math.Floor(math.Log10(step)))
	frac := step / mag
	ok := math.Abs(frac-1) < 1e-9 || math.Abs(frac-2) < 1e-9 || math.Abs(frac-5) < 1e-9
	if !ok {
		t.Fatalf("step %v not nice", step)
	}
}

func TestTicksDegenerate(t *testing.T) {
	if got := Ticks(5, 5, 6); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate ticks %v", got)
	}
}

func TestTicksSmallRange(t *testing.T) {
	ticks := Ticks(0.98, 1.06, 5)
	if len(ticks) < 2 {
		t.Fatalf("ticks %v", ticks)
	}
}

func TestEscape(t *testing.T) {
	p := Plot{Title: `a<b>&"c"`, Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	out, err := p.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "a<b>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}
