// Package plot renders simple line/scatter charts as standalone SVG, used
// by cmd/figures to draw the reproduced figures (the Figure-1 trajectory,
// the hop-scaling and failure-decay curves) without any dependency beyond
// the standard library.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points (equal length).
	X, Y []float64
	// Dashed draws a dashed line (used for theory curves).
	Dashed bool
	// Markers draws a circle at every point.
	Markers bool
}

// Plot is a single chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY plots the y axis in log10 (positive values only).
	LogY bool
	// Width and Height are the SVG dimensions in pixels (defaults 640x420).
	Width, Height int
}

// palette holds the series colors (colorblind-safe).
var palette = []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#56b4e9", "#e69f00"}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 36.0
	marginBottom = 48.0
)

// SVG renders the chart. It errors on empty or inconsistent input.
func (p *Plot) SVG() (string, error) {
	if len(p.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w, h := p.Width, p.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 420
	}
	tf := func(y float64) float64 { return y }
	if p.LogY {
		tf = math.Log10
	}
	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if p.LogY && s.Y[i] <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, tf(s.Y[i]))
			maxY = math.Max(maxY, tf(s.Y[i]))
		}
	}
	if math.IsInf(minX, 1) {
		return "", fmt.Errorf("plot: no plottable points")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	// A little headroom.
	padY := (maxY - minY) * 0.06
	minY, maxY = minY-padY, maxY+padY

	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n",
			marginLeft+plotW/2, esc(p.Title))
	}
	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#444"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)
	// Ticks and grid.
	for _, t := range Ticks(minX, maxX, 6) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", x, marginTop+plotH+16, fmtTick(t))
	}
	for _, t := range Ticks(minY, maxY, 6) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginLeft, y, marginLeft+plotW, y)
		label := fmtTick(t)
		if p.LogY {
			label = fmtTick(math.Pow(10, t))
		}
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n", marginLeft-6, y+4, label)
	}
	// Axis labels.
	if p.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			marginLeft+plotW/2, float64(h)-8, esc(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
			marginTop+plotH/2, marginTop+plotH/2, esc(p.YLabel))
	}
	// Series.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		var pts []string
		for i := range s.X {
			if p.LogY && s.Y[i] <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%g,%g", px(s.X[i]), py(tf(s.Y[i]))))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n",
				strings.Join(pts, " "), color, dash)
		}
		if s.Markers || len(pts) == 1 {
			for i := range s.X {
				if p.LogY && s.Y[i] <= 0 {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n", px(s.X[i]), py(tf(s.Y[i])), color)
			}
		}
		// Legend entry.
		ly := marginTop + 14 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"%s/>`+"\n",
			marginLeft+plotW-130, ly-4, marginLeft+plotW-110, ly-4, color, dash)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", marginLeft+plotW-104, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// Ticks returns up to approximately count "nice" tick positions covering
// [lo, hi].
func Ticks(lo, hi float64, count int) []float64 {
	if count < 2 {
		count = 2
	}
	span := hi - lo
	if span <= 0 || math.IsNaN(span) || math.IsInf(span, 0) {
		return []float64{lo}
	}
	step := niceStep(span / float64(count))
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for t := first; t <= hi+step*1e-9; t += step {
		// Clean floating noise like 0.30000000000000004.
		ticks = append(ticks, math.Round(t/step)*step)
	}
	return ticks
}

// niceStep rounds a raw step to 1, 2 or 5 times a power of ten.
func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	frac := raw / mag
	switch {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// fmtTick prints a tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av != 0 && (av < 0.01 || av >= 100000):
		return fmt.Sprintf("%.0e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

// esc escapes XML-special characters in labels.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
