package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/route"
)

// EpisodeConfig configures one budgeted routing episode — the single-query
// analogue of MilgramConfig, exported so long-running services can drive the
// engine one request at a time with the same budget and fault machinery the
// batch runner uses.
type EpisodeConfig struct {
	// Protocol selects the routing protocol by registered name ("" = greedy).
	Protocol Protocol
	// S and T are the source and target vertices.
	S, T int
	// MaxHops caps the adjacency queries before the engine cuts the episode
	// off as route.FailDeadline (0 = no cap), exactly as in MilgramConfig.
	MaxHops int
	// Timeout caps the episode's wall time (0 = none). A service maps its
	// per-request deadline onto this field, turning a slow episode into a
	// classified route.FailDeadline instead of a stuck handler.
	Timeout time.Duration
	// Faults optionally layers a fault-injection plan over the episode. The
	// plan binds to the graph per call, so per-request plans are cheap for the
	// transient models and pay their per-graph setup only when a crash model
	// is present. nil injects nothing.
	Faults *faults.Plan
	// Episode is the episode index handed to the fault plan's views; retrying
	// services vary it per attempt so transient fault draws are independent
	// across retries.
	Episode int
	// Observer, when non-nil, receives the episode's per-move events after it
	// finishes (replayed over the fault-free graph and objective).
	Observer route.Observer
}

// RouteEpisode runs one budgeted routing episode under cfg. Episodes whose
// source or target a fault plan crashed are classified
// route.FailCrashedTarget without running the protocol; budget cuts come
// back as route.FailDeadline results, not errors. Every episode feeds the
// process-wide engine counters, so services built on this entry point get
// the expvar taxonomy for free.
func (nw *Network) RouteEpisode(cfg EpisodeConfig) (route.Result, error) {
	var res route.Result
	if err := nw.RouteEpisodeInto(cfg, nil, &res); err != nil {
		return route.Result{}, err
	}
	return res, nil
}

// RouteEpisodeInto is RouteEpisode building into a caller-owned Result over
// reusable scratch — the entry point for services that route many episodes
// and pool their per-episode state (internal/serve). out's Path backing
// array is reused; callers that keep paths past the next episode copy them
// (route.Result.CopyInto). sc may be nil at the cost of per-episode
// allocations. Greedy episodes on a standard-phi network without faults run
// the concrete zero-allocation fast path (route.GreedyCSR).
func (nw *Network) RouteEpisodeInto(cfg EpisodeConfig, sc *route.Scratch, out *route.Result) error {
	p, err := resolve(cfg.Protocol)
	if err != nil {
		return err
	}
	// One atomic load per episode: the request routes entirely over this
	// epoch even if a mutation batch publishes mid-flight.
	ov, live := nw.liveView()
	if live {
		if err := nw.checkLive(false); err != nil {
			return err
		}
	}
	liveG := route.Graph(nw.Graph)
	liveN := nw.Graph.N()
	if live {
		liveG, liveN = ov, ov.N()
	}
	objective := nw.NewObjective
	if live {
		objective = func(t int) route.Objective { return route.NewStandard(ov, t) }
	}
	if cfg.S < 0 || cfg.S >= liveN || cfg.T < 0 || cfg.T >= liveN {
		return fmt.Errorf("core: vertex pair (%d, %d) out of range (n = %d)", cfg.S, cfg.T, liveN)
	}
	bound := cfg.Faults.Bind(liveG)
	if !bound.Empty() && (bound.Crashed(cfg.S) || bound.Crashed(cfg.T)) {
		*out = route.Result{Path: append(out.Path[:0], cfg.S), Unique: 1, Stuck: -1, Failure: route.FailCrashedTarget}
		recordEpisode(*out, 0)
		return nil
	}
	_, isGreedy := p.(route.GreedyRouter)
	if isGreedy && nw.StandardPhi && bound.Empty() && sc != nil {
		start := time.Now()
		b := route.Budget{MaxScans: cfg.MaxHops}
		if cfg.Timeout > 0 {
			b.Deadline = start.Add(cfg.Timeout)
		}
		if live {
			route.GreedyCSROverlay(ov, cfg.T, cfg.S, b, sc, out)
		} else {
			route.GreedyCSR(nw.Graph, cfg.T, cfg.S, b, sc, out)
		}
		recordEpisode(*out, time.Since(start))
	} else {
		eg, eobj := liveG, objective(cfg.T)
		if !bound.Empty() {
			eg, eobj = bound.View(eg, eobj, cfg.Episode)
		}
		if err := runEpisodeInto(eg, p, eobj, cfg.S, cfg.MaxHops, cfg.Timeout, sc, out); err != nil {
			return err
		}
	}
	if cfg.Observer != nil {
		route.Observe(liveG, objective(cfg.T), *out, cfg.Episode, cfg.Observer)
	}
	return nil
}
