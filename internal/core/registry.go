package core

import (
	"repro/internal/route"
)

// Protocol names a routing protocol in the registry. The value is the
// protocol's registered name ("greedy", "phi-dfs", ...); the zero value ""
// selects the default protocol, greedy. Because Protocol is a string type,
// registry names convert directly: nw.Route("phi-dfs", s, t) works as well
// as nw.Route(core.ProtoPhiDFS, s, t).
type Protocol string

// Deprecated protocol constants. They predate the registry, when Protocol
// was an int enum dispatched by a switch; they now resolve through the
// registry by name and exist only so pre-registry callers keep compiling.
// New code should use registry names directly (or route.Lookup for the
// implementation).
const (
	// ProtoGreedy is the pure greedy protocol of Algorithm 1.
	//
	// Deprecated: use the registry name "greedy".
	ProtoGreedy Protocol = "greedy"
	// ProtoPhiDFS is the paper's Algorithm 2 patching protocol.
	//
	// Deprecated: use the registry name "phi-dfs".
	ProtoPhiDFS Protocol = "phi-dfs"
	// ProtoHistory is the message-history patching protocol (Section 5,
	// first example).
	//
	// Deprecated: use the registry name "history".
	ProtoHistory Protocol = "history"
	// ProtoGravityPressure is the gravity-pressure heuristic (violates P3).
	//
	// Deprecated: use the registry name "gravity-pressure".
	ProtoGravityPressure Protocol = "gravity-pressure"
	// ProtoLookahead is greedy routing on the one-hop lookahead objective
	// ("know thy neighbor's neighbor", related work of Section 1.1).
	//
	// Deprecated: use the registry name "greedy+lookahead".
	ProtoLookahead Protocol = "greedy+lookahead"
)

// String names the protocol for reports.
func (p Protocol) String() string {
	if p == "" {
		return string(ProtoGreedy)
	}
	return string(p)
}

// Register adds a protocol to the engine's registry. Protocols register by
// value; the same registry backs route.Lookup, core.Lookup and every place
// a protocol name is accepted. It panics on duplicate or empty names.
func Register(p route.Protocol) { route.Register(p) }

// Lookup resolves a registered protocol by name. The error for an unknown
// name lists every registered protocol.
func Lookup(name string) (route.Protocol, error) { return route.Lookup(string(name)) }

// reportOrder fixes the display order of the built-in protocols in tables
// and sweeps (pure greedy and its lookahead variant first, then the
// patchers). Externally registered protocols follow in registration order.
var reportOrder = []Protocol{ProtoGreedy, ProtoLookahead, ProtoPhiDFS, ProtoHistory, ProtoGravityPressure}

// Protocols lists all registered protocols: the built-ins in report order,
// then any externally registered protocols in registration order.
func Protocols() []Protocol {
	registered := route.Registered()
	builtin := make(map[Protocol]bool, len(reportOrder))
	for _, p := range reportOrder {
		builtin[p] = true
	}
	out := make([]Protocol, 0, len(registered))
	out = append(out, reportOrder...)
	for _, name := range registered {
		if !builtin[Protocol(name)] {
			out = append(out, Protocol(name))
		}
	}
	return out
}

// resolve maps a config-level Protocol to its implementation; the zero value
// selects greedy.
func resolve(p Protocol) (route.Protocol, error) {
	if p == "" {
		p = ProtoGreedy
	}
	return route.Lookup(string(p))
}
