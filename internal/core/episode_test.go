package core

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/route"
)

// TestRouteEpisodeBasic runs a plain budgetless episode through the
// single-query entry point and checks it matches Route.
func TestRouteEpisodeBasic(t *testing.T) {
	nw := girgNet(t, 400, 11)
	res, err := nw.RouteEpisode(EpisodeConfig{S: 1, T: 200})
	if err != nil {
		t.Fatal(err)
	}
	want, err := nw.Route("", 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success != want.Success || res.Moves != want.Moves {
		t.Fatalf("RouteEpisode = %+v, Route = %+v", res, want)
	}
}

// TestRouteEpisodeBudget verifies a tiny hop budget classifies the episode
// as deadline instead of erroring.
func TestRouteEpisodeBudget(t *testing.T) {
	nw := girgNet(t, 2000, 7)
	res, err := nw.RouteEpisode(EpisodeConfig{S: 0, T: 1500, MaxHops: 1, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success || res.Failure != route.FailDeadline {
		t.Fatalf("budgeted episode = %+v, want deadline failure", res)
	}
}

// TestRouteEpisodeCrashedTarget verifies a full-crash plan classifies the
// episode without running the protocol.
func TestRouteEpisodeCrashedTarget(t *testing.T) {
	nw := girgNet(t, 400, 11)
	plan, err := faults.NewPlan(3, faults.Spec{Model: "crash-uniform", Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RouteEpisode(EpisodeConfig{S: 1, T: 200, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != route.FailCrashedTarget {
		t.Fatalf("failure = %q, want crashed-target", res.Failure)
	}
}

// TestRouteEpisodeValidation covers the error surface: unknown protocol and
// out-of-range vertices.
func TestRouteEpisodeValidation(t *testing.T) {
	nw := girgNet(t, 400, 11)
	if _, err := nw.RouteEpisode(EpisodeConfig{Protocol: "nope", S: 0, T: 1}); err == nil {
		t.Fatal("unknown protocol did not error")
	}
	if _, err := nw.RouteEpisode(EpisodeConfig{S: -1, T: 1}); err == nil {
		t.Fatal("out-of-range source did not error")
	}
}

// TestRouteEpisodeObserver verifies the observer replay carries the
// episode's path in step order.
func TestRouteEpisodeObserver(t *testing.T) {
	nw := girgNet(t, 400, 11)
	var events []route.MoveEvent
	obs := route.ObserverFunc(func(ev route.MoveEvent) { events = append(events, ev) })
	res, err := nw.RouteEpisode(EpisodeConfig{S: 1, T: 200, Episode: 9, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Path) {
		t.Fatalf("observer saw %d events for a %d-vertex path", len(events), len(res.Path))
	}
	for i, ev := range events {
		if ev.V != res.Path[i] || ev.Episode != 9 || ev.Step != i {
			t.Fatalf("event %d = %+v, want path vertex %d", i, ev, res.Path[i])
		}
	}
}
