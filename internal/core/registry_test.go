package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/route"
)

// reportsEqual compares two reports field by field, treating NaN summary
// means as equal (reflect.DeepEqual would not).
func reportsEqual(a, b MilgramReport) bool {
	eq := func(x, y float64) bool { return x == y || (math.IsNaN(x) && math.IsNaN(y)) }
	return a.Attempts == b.Attempts && a.Success == b.Success &&
		a.Truncated == b.Truncated &&
		eq(a.MeanHops, b.MeanHops) && eq(a.MeanStretch, b.MeanStretch) &&
		reflect.DeepEqual(a.Hops, b.Hops) && reflect.DeepEqual(a.Stretches, b.Stretches)
}

// TestGoldenShimEquivalence pins the API redesign to the pre-registry
// behavior: each deprecated Proto* constant, resolved through the registry,
// must produce a Result bit-identical to the enum switch it replaced. The
// right-hand sides below are the old switch arms, inlined.
func TestGoldenShimEquivalence(t *testing.T) {
	nw := girgNet(t, 1200, 31)
	giant := nw.Giant()
	golden := map[Protocol]func(obj route.Objective, s int) route.Result{
		ProtoGreedy: func(obj route.Objective, s int) route.Result {
			return route.Greedy(nw.Graph, obj, s)
		},
		ProtoLookahead: func(obj route.Objective, s int) route.Result {
			return route.Greedy(nw.Graph, route.NewLookahead(nw.Graph, obj), s)
		},
		ProtoPhiDFS: func(obj route.Objective, s int) route.Result {
			return route.PhiDFS{}.Route(nw.Graph, obj, s)
		},
		ProtoHistory: func(obj route.Objective, s int) route.Result {
			return route.HistoryPatch{}.Route(nw.Graph, obj, s)
		},
		ProtoGravityPressure: func(obj route.Objective, s int) route.Result {
			return route.GravityPressure{}.Route(nw.Graph, obj, s)
		},
	}
	// Several pairs across the giant component, fixed by the graph seed.
	pairs := [][2]int{
		{giant[0], giant[len(giant)-1]},
		{giant[len(giant)/2], giant[1]},
		{giant[7], giant[len(giant)/3]},
	}
	for proto, old := range golden {
		for _, pr := range pairs {
			s, tgt := pr[0], pr[1]
			got, err := nw.Route(proto, s, tgt)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}
			want := old(nw.NewObjective(tgt), s)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s on (%d, %d): registry result %+v differs from pre-redesign dispatch %+v",
					proto, s, tgt, got, want)
			}
		}
	}
}

func TestLookupErrorListsProtocols(t *testing.T) {
	_, err := Lookup("bogus")
	if err == nil {
		t.Fatal("Lookup of unknown name succeeded")
	}
	for _, p := range []Protocol{ProtoGreedy, ProtoPhiDFS, ProtoGravityPressure} {
		if !strings.Contains(err.Error(), string(p)) {
			t.Fatalf("error %q does not list %q", err, p)
		}
	}
	p, err := Lookup("greedy")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "greedy" {
		t.Fatalf("Lookup(greedy).Name() = %q", p.Name())
	}
}

func TestZeroValueProtocolIsGreedy(t *testing.T) {
	// A zero-valued MilgramConfig.Protocol must route greedily — identical
	// report to an explicit ProtoGreedy, not an error.
	nw := girgNet(t, 900, 32)
	def, err := RunMilgram(nw, MilgramConfig{Pairs: 40, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunMilgram(nw, MilgramConfig{Pairs: 40, Seed: 33, Protocol: ProtoGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(def, explicit) {
		t.Fatalf("zero-value protocol report %+v differs from explicit greedy %+v", def, explicit)
	}
}

// constProtocol is an externally registered protocol: it never moves.
type constProtocol struct{}

func (constProtocol) Name() string { return "test-stay-put" }
func (constProtocol) Route(g route.Graph, obj route.Objective, s int) route.Result {
	return route.Result{Path: []int{s}, Stuck: s, Unique: 1}
}

// panicProtocol panics on every episode, as a buggy plug-in would.
type panicProtocol struct{}

func (panicProtocol) Name() string { return "test-panic" }
func (panicProtocol) Route(g route.Graph, obj route.Objective, s int) route.Result {
	panic("buggy plug-in protocol")
}

func TestExternalProtocolPlugsIn(t *testing.T) {
	Register(constProtocol{})
	nw := girgNet(t, 600, 34)

	// Addressable everywhere a protocol name is accepted.
	res, err := nw.Route("test-stay-put", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success || len(res.Path) != 1 || res.Path[0] != 3 {
		t.Fatalf("custom protocol result %+v", res)
	}
	rep, err := RunMilgram(nw, MilgramConfig{Pairs: 20, Seed: 35, Protocol: "test-stay-put"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success.P != 0 {
		t.Fatalf("stay-put protocol delivered %v of letters", rep.Success.P)
	}
	// And listed after the built-ins.
	ps := Protocols()
	found := false
	for _, p := range ps[5:] {
		if p == "test-stay-put" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Protocols() = %v does not list the external protocol after the built-ins", ps)
	}
}

func TestProtocolPanicBecomesError(t *testing.T) {
	Register(panicProtocol{})
	nw := girgNet(t, 600, 36)

	before := Stats()
	if _, err := nw.Route("test-panic", 0, 1); err == nil {
		t.Fatal("panicking protocol returned no error from Route")
	} else if !strings.Contains(err.Error(), "test-panic") {
		t.Fatalf("error %q does not name the protocol", err)
	}
	// Batch runs must surface the error too — episode errors are propagated,
	// not swallowed.
	if _, err := RunMilgram(nw, MilgramConfig{Pairs: 10, Seed: 37, Protocol: "test-panic"}); err == nil {
		t.Fatal("panicking protocol returned no error from RunMilgram")
	}
	after := Stats()
	if after.Panics <= before.Panics {
		t.Fatalf("panic counter did not advance: %d -> %d", before.Panics, after.Panics)
	}
}

func TestRunMilgramCtxCancelled(t *testing.T) {
	nw := girgNet(t, 800, 38)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	before := Stats()
	rep, err := RunMilgramCtx(ctx, nw, MilgramConfig{Pairs: 500, Seed: 39})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Attempts != 0 || rep.Hops != nil {
		t.Fatalf("cancelled batch returned a partial report: %+v", rep)
	}
	after := Stats()
	if after.Episodes != before.Episodes {
		t.Fatalf("cancelled batch routed %d pairs", after.Episodes-before.Episodes)
	}
	if after.Batches != before.Batches {
		t.Fatal("cancelled batch counted as started")
	}
}

func TestRunMilgramCtxBackground(t *testing.T) {
	// A live context must not disturb the batch.
	nw := girgNet(t, 800, 40)
	a, err := RunMilgram(nw, MilgramConfig{Pairs: 30, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMilgramCtx(context.Background(), nw, MilgramConfig{Pairs: 30, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if !reportsEqual(a, b) {
		t.Fatalf("RunMilgramCtx report %+v differs from RunMilgram %+v", b, a)
	}
}

func TestEngineStatsCount(t *testing.T) {
	nw := girgNet(t, 700, 42)
	before := Stats()
	rep, err := RunMilgram(nw, MilgramConfig{Pairs: 25, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	after := Stats()
	if d := after.Episodes - before.Episodes; d != 25 {
		t.Fatalf("episode counter advanced by %d, want 25", d)
	}
	if d := after.Batches - before.Batches; d != 1 {
		t.Fatalf("batch counter advanced by %d, want 1", d)
	}
	if after.Moves <= before.Moves {
		t.Fatal("move counter did not advance")
	}
	failed := int64(rep.Attempts - len(rep.Hops))
	if d := after.Failures - before.Failures; d != failed {
		t.Fatalf("failure counter advanced by %d, report shows %d failures", d, failed)
	}
	var histTotal int64
	for _, c := range after.EpisodeWallTime {
		histTotal += c
	}
	if histTotal != after.Episodes-after.Panics {
		t.Fatalf("wall-time histogram holds %d episodes, counters say %d",
			histTotal, after.Episodes-after.Panics)
	}
}
