package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/par"
	"repro/internal/route"
)

// This file is the crash-safety half of the Milgram engine: when
// MilgramConfig.Checkpoint is set, RunMilgramCtx executes its episodes in
// fixed batches, journals each completed batch's results, and replays
// journaled batches instead of recomputing them. Episodes are pure
// functions of their global index (pair draws are sequential, fault
// decisions pure-hash), so a replayed batch is indistinguishable from a
// recomputed one and a resumed run's final report is bit-identical to an
// uninterrupted run's.

// episode is the engine's per-routing outcome slot; batches of these are
// what the checkpoint journal stores.
type episode struct {
	done      bool // routed (false only when the batch was cancelled first)
	success   bool
	truncated bool
	failure   route.Failure
	moves     int
	stretch   float64 // 0 when not computed or failed
	path      []int   // retained only for observer replay
	err       error
}

// episodeRecord is the journaled form of one completed episode. Fields are
// JSON with single-letter keys: a batch record is a few KiB, read back
// only on resume. Paths and errors are deliberately absent — batches with
// episode errors are never journaled, and observer runs are not
// checkpointable.
type episodeRecord struct {
	Success   bool          `json:"s,omitempty"`
	Truncated bool          `json:"t,omitempty"`
	Failure   route.Failure `json:"f,omitempty"`
	Moves     int           `json:"m,omitempty"`
	Stretch   float64       `json:"d,omitempty"`
}

// defaultCheckpointBatch is the episodes-per-record default: small enough
// that a SIGKILL loses at most a second or two of routing on typical
// workloads, large enough that journal overhead stays negligible.
const defaultCheckpointBatch = 64

// runCheckpointedBatches drives the episodes in journal-sized batches.
// batchErr carries the same semantics as par.ForEachCtx on the plain path
// (ctx cancellation, contained panics); fatal carries journal and decode
// failures that must abort the run without a partial report.
func runCheckpointedBatches(ctx context.Context, cfg MilgramConfig, episodes []episode, runOne func(w, i int)) (batchErr, fatal error) {
	size := cfg.CheckpointBatch
	if size <= 0 {
		size = defaultCheckpointBatch
	}
	ns := cfg.CheckpointKey
	if ns == "" {
		ns = "milgram"
	}
	for lo := 0; lo < len(episodes); lo += size {
		hi := min(lo+size, len(episodes))
		// The batch size is part of the key: a journal written under a
		// different batching never matches, it is just not reused.
		key := fmt.Sprintf("%s#%d@%d", ns, lo/size, size)
		if payload, ok := cfg.Checkpoint.Get(key); ok {
			if err := decodeBatch(payload, episodes[lo:hi]); err != nil {
				return nil, fmt.Errorf("core: checkpoint record %q: %w", key, err)
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return err, nil
		}
		// Worker indices stay within the caller's state slice: the batch is
		// no larger than the full episode range the states were sized for.
		if err := par.ForEachWorkerCtx(ctx, hi-lo, 0, func(w, i int) { runOne(w, lo+i) }); err != nil {
			return err, nil
		}
		for i := lo; i < hi; i++ {
			if episodes[i].err != nil {
				// The caller propagates the episode error; an errored batch
				// is never journaled, so a retry recomputes it.
				return nil, nil
			}
		}
		payload, err := encodeBatch(episodes[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint record %q: %w", key, err)
		}
		if err := cfg.Checkpoint.Put(key, payload); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return nil, nil
}

// encodeBatch serializes a slice of completed episodes.
func encodeBatch(eps []episode) ([]byte, error) {
	recs := make([]episodeRecord, len(eps))
	for i, ep := range eps {
		recs[i] = episodeRecord{
			Success:   ep.success,
			Truncated: ep.truncated,
			Failure:   ep.failure,
			Moves:     ep.moves,
			Stretch:   ep.stretch,
		}
	}
	return json.Marshal(recs)
}

// decodeBatch fills eps from a journaled batch record.
func decodeBatch(payload []byte, eps []episode) error {
	var recs []episodeRecord
	if err := json.Unmarshal(payload, &recs); err != nil {
		return err
	}
	if len(recs) != len(eps) {
		return fmt.Errorf("holds %d episodes, want %d (journal from a different configuration?)", len(recs), len(eps))
	}
	for i, r := range recs {
		eps[i] = episode{
			done:      true,
			success:   r.Success,
			truncated: r.Truncated,
			failure:   r.Failure,
			moves:     r.Moves,
			stretch:   r.Stretch,
		}
	}
	return nil
}
