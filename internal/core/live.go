package core

import (
	"fmt"

	"repro/internal/graph"
)

// Live overlays. A Network optionally carries a copy-on-write
// graph.Overlay published by the mutation log (internal/mutate): routing
// entry points load it once per episode (or once per batch) and see either
// the previous epoch or the next in full — never a half-applied batch.
// Overlays are only meaningful on standard-phi networks: the overlay's own
// geometry drives the objective, so added vertices score exactly like base
// vertices, and routing over the overlay stays bit-identical to routing
// over its materialization. Custom-objective networks (phi_H, lattice
// distance, relaxed sweeps) reject live overlays instead of silently
// scoring added vertices wrong.
//
// Degradation under churn is inherited from the overlay semantics: a walk
// that reaches a tombstoned vertex reads an empty adjacency and fails as
// the existing route.FailDeadEnd class; the giant-component pool and
// fault-free BFS stretch are measured on the live overlay when one is
// attached.

// SetOverlay publishes ov as the network's live graph. ov must overlay
// nw.Graph (same base); nil detaches. Concurrent routers observe the swap
// atomically.
func (nw *Network) SetOverlay(ov *graph.Overlay) error {
	if ov != nil && ov.Base() != nw.Graph {
		return fmt.Errorf("core: overlay is layered on a different base graph")
	}
	nw.live.Store(ov)
	return nil
}

// LiveOverlay returns the attached overlay, or nil.
func (nw *Network) LiveOverlay() *graph.Overlay { return nw.live.Load() }

// liveView returns the overlay to route over, if any: attached and
// non-empty (an empty overlay routes through the unchanged base fast
// paths).
func (nw *Network) liveView() (*graph.Overlay, bool) {
	ov := nw.live.Load()
	return ov, ov != nil && !ov.Empty()
}

// LiveN returns the live vertex-id space: the overlay's N when one is
// attached, the base graph's otherwise.
func (nw *Network) LiveN() int {
	if ov := nw.live.Load(); ov != nil {
		return ov.N()
	}
	return nw.Graph.N()
}

// checkLive validates that this network can route over a live overlay with
// the given objective override.
func (nw *Network) checkLive(customObjective bool) error {
	if !nw.StandardPhi {
		return fmt.Errorf("core: live overlays require a standard-objective network (%s routes by a custom objective)", nw.Label)
	}
	if customObjective {
		return fmt.Errorf("core: live overlays do not compose with custom objective overrides")
	}
	return nil
}
