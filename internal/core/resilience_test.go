package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/route"
)

// reportsIdentical is reportsEqual extended over the resilience fields: two
// reports are identical only if their failure taxonomies, partial flags and
// cancellation counts also match.
func reportsIdentical(a, b MilgramReport) bool {
	return reportsEqual(a, b) && a.Partial == b.Partial && a.Cancelled == b.Cancelled &&
		reflect.DeepEqual(a.Failures, b.Failures)
}

func TestRunMilgramMaxHopsClassifiesDeadline(t *testing.T) {
	nw := girgNet(t, 2000, 50)
	free, err := RunMilgram(nw, MilgramConfig{Pairs: 120, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunMilgram(nw, MilgramConfig{Pairs: 120, Seed: 51, MaxHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Attempts != 120 {
		t.Fatalf("attempts %d", capped.Attempts)
	}
	// One adjacency query buys at most one hop: multi-hop routes are cut off
	// and classified as deadline failures, not dead ends.
	if capped.Failures[route.FailDeadline] == 0 {
		t.Fatalf("no deadline failures under MaxHops=1: %+v", capped.Failures)
	}
	if capped.Success.P >= free.Success.P {
		t.Fatalf("hop budget did not reduce success: %v >= %v", capped.Success.P, free.Success.P)
	}
	for _, h := range capped.Hops {
		if h > 1 {
			t.Fatalf("successful episode took %v hops under a 1-query budget", h)
		}
	}
}

// slowProtocol simulates a hung plug-in: it queries adjacency forever. Only
// the engine's wall-time budget can terminate its episodes.
type slowProtocol struct{}

func (slowProtocol) Name() string { return "test-slow" }
func (slowProtocol) Route(g route.Graph, obj route.Objective, s int) route.Result {
	for {
		g.Neighbors(s)
		time.Sleep(100 * time.Microsecond)
	}
}

func TestRunMilgramEpisodeTimeoutTurnsHangIntoFailure(t *testing.T) {
	Register(slowProtocol{})
	nw := girgNet(t, 600, 52)
	start := time.Now()
	rep, err := RunMilgram(nw, MilgramConfig{
		Pairs: 4, Seed: 53, Protocol: "test-slow", EpisodeTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("budgeted batch took %v", elapsed)
	}
	if rep.Attempts != 4 || rep.Failures[route.FailDeadline] != 4 {
		t.Fatalf("hung episodes not classified as deadline failures: %+v", rep)
	}
	if rep.Success.P != 0 {
		t.Fatalf("hung protocol delivered %v of letters", rep.Success.P)
	}
}

func TestRunMilgramFaultPlanCrash(t *testing.T) {
	nw := girgNet(t, 1500, 54)
	plan, err := faults.NewPlan(7, faults.Spec{Model: "crash-uniform", Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	before := Stats()
	rep, err := RunMilgram(nw, MilgramConfig{Pairs: 200, Seed: 55, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 200 {
		t.Fatalf("attempts %d", rep.Attempts)
	}
	// With ~30% of vertices down, ~1-0.7^2 of pairs lose an endpoint.
	crashed := rep.Failures[route.FailCrashedTarget]
	if crashed < 50 || crashed > 150 {
		t.Fatalf("crashed-endpoint episodes %d, want roughly 0.51*200", crashed)
	}
	after := Stats()
	if d := after.FailureTaxonomy[string(route.FailCrashedTarget)] -
		before.FailureTaxonomy[string(route.FailCrashedTarget)]; d != int64(crashed) {
		t.Fatalf("engine crashed-target counter advanced by %d, report shows %d", d, crashed)
	}
}

func TestRunMilgramFaultPlanEdgeDrop(t *testing.T) {
	nw := girgNet(t, 1500, 56)
	plan, err := faults.NewPlan(8, faults.Spec{Model: "edge-drop", Rate: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunMilgram(nw, MilgramConfig{Pairs: 100, Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := RunMilgram(nw, MilgramConfig{Pairs: 100, Seed: 57, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Success.P >= free.Success.P {
		t.Fatalf("90%% edge drop did not reduce success: %v >= %v", faulty.Success.P, free.Success.P)
	}
}

// TestFaultyBatchDeterministic is the golden determinism check of the chaos
// harness: a batch layering three fault models plus a hop budget must be
// bit-identical whether episodes run on one core or all of them, and across
// two same-seed runs. Fault decisions are pure functions of
// (seed, episode, query), so worker scheduling must not leak into the table.
func TestFaultyBatchDeterministic(t *testing.T) {
	nw := girgNet(t, 1500, 58)
	plan, err := faults.NewPlan(9,
		faults.Spec{Model: "edge-drop", Rate: 0.2},
		faults.Spec{Model: "crash-uniform", Rate: 0.1},
		faults.Spec{Model: "objective-noise", Rate: 0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MilgramConfig{
		Pairs: 80, Seed: 59, Protocol: ProtoPhiDFS, ComputeStretch: true,
		MaxHops: 50000, Faults: plan,
	}
	prev := runtime.GOMAXPROCS(1)
	seq, err := RunMilgram(nw, cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := RunMilgram(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsIdentical(seq, parl) {
		t.Fatalf("faulty batch differs across worker counts:\nseq  %+v\npar  %+v", seq, parl)
	}
	again, err := RunMilgram(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsIdentical(parl, again) {
		t.Fatalf("faulty batch differs across same-seed runs:\n1st %+v\n2nd %+v", parl, again)
	}
	if math.IsNaN(parl.MeanHops) {
		t.Fatal("no successful episodes under moderate faults")
	}
}

func TestRunMilgramCtxPartialReportOnMidRunCancel(t *testing.T) {
	nw := girgNet(t, 800, 60)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	const pairs = 3000
	before := Stats()
	rep, err := RunMilgramCtx(ctx, nw, MilgramConfig{
		Pairs: pairs,
		Seed:  61,
		Objective: func(tgt int) route.Objective {
			if calls.Add(1) == 64 {
				cancel()
			}
			return route.NewStandard(nw.Graph, tgt)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !rep.Partial {
		t.Fatal("mid-run cancellation did not mark the report partial")
	}
	if rep.Attempts == 0 {
		t.Fatal("partial report dropped the completed episodes")
	}
	if rep.Cancelled == 0 {
		t.Fatal("partial report counts no cancelled episodes")
	}
	if rep.Attempts+rep.Cancelled != pairs {
		t.Fatalf("attempts %d + cancelled %d != %d pairs", rep.Attempts, rep.Cancelled, pairs)
	}
	after := Stats()
	if d := after.FailureTaxonomy[string(route.FailCancelled)] -
		before.FailureTaxonomy[string(route.FailCancelled)]; d != int64(rep.Cancelled) {
		t.Fatalf("engine cancelled counter advanced by %d, report shows %d", d, rep.Cancelled)
	}
	// Only the completed episodes routed.
	if d := after.Episodes - before.Episodes; d != int64(rep.Attempts) {
		t.Fatalf("engine routed %d episodes, report attempted %d", d, rep.Attempts)
	}
}

// panicFaultModel is a buggy fault model plug-in: every episode view panics.
type panicFaultModel struct{}

func (panicFaultModel) Name() string                          { return "test-panic-fault" }
func (panicFaultModel) Bind(route.Graph, uint64) faults.Bound { return panicFaultBound{} }

type panicFaultBound struct{}

func (panicFaultBound) View(route.Graph, route.Objective, int) (route.Graph, route.Objective) {
	panic("chaotic fault model")
}
func (panicFaultBound) Crashed(int) bool { return false }

func TestFaultModelPanicFailsOnlyBatch(t *testing.T) {
	nw := girgNet(t, 600, 62)
	plan := &faults.Plan{Seed: 10, Models: []faults.Model{panicFaultModel{}}}
	_, err := RunMilgram(nw, MilgramConfig{Pairs: 20, Seed: 63, Faults: plan})
	if err == nil {
		t.Fatal("panicking fault model returned no error")
	}
	if !strings.Contains(err.Error(), "episode") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not describe the panicking episode", err)
	}
	// The panic was contained to that batch: the engine still runs.
	rep, err := RunMilgram(nw, MilgramConfig{Pairs: 20, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 20 {
		t.Fatalf("engine broken after contained panic: %+v", rep)
	}
}

// stuckProtocol never moves and — like a hand-rolled external plug-in —
// returns its failed Result without setting the Failure classification.
type stuckProtocol struct{}

func (stuckProtocol) Name() string { return "test-stuck" }
func (stuckProtocol) Route(g route.Graph, obj route.Objective, s int) route.Result {
	return route.Result{Path: []int{s}, Stuck: s, Unique: 1}
}

func TestEngineStatsTaxonomyKeysAlwaysPresent(t *testing.T) {
	s := Stats()
	for _, f := range route.Failures() {
		if _, ok := s.FailureTaxonomy[string(f)]; !ok {
			t.Fatalf("taxonomy key %q missing from EngineStats: %v", f, s.FailureTaxonomy)
		}
	}
	// An unclassified failure from an external protocol must be folded into
	// the taxonomy as a dead end, in the report and the engine counters alike.
	Register(stuckProtocol{})
	nw := girgNet(t, 900, 64)
	before := Stats()
	rep, err := RunMilgram(nw, MilgramConfig{Pairs: 60, Seed: 65, Protocol: "test-stuck"})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Failures[route.FailDeadEnd]; got != 60 {
		t.Fatalf("unclassified failures counted as %v, want 60 dead ends (map %v)", got, rep.Failures)
	}
	after := Stats()
	if d := after.FailureTaxonomy[string(route.FailDeadEnd)] -
		before.FailureTaxonomy[string(route.FailDeadEnd)]; d != 60 {
		t.Fatalf("dead-end counter advanced by %d, want 60", d)
	}
}
