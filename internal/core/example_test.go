package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/girg"
)

// ExampleRunMilgram reproduces a small Milgram-style batch experiment.
func ExampleRunMilgram() {
	nw, err := core.NewGIRG(girg.DefaultParams(2000), 42, girg.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := core.RunMilgram(nw, core.MilgramConfig{Pairs: 100, Seed: 7})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("attempts:", rep.Attempts)
	fmt.Println("all delivered:", rep.Success.P == 1)
	// Output:
	// attempts: 100
	// all delivered: true
}

// ExampleNetwork_Route dispatches one episode per protocol.
func ExampleNetwork_Route() {
	nw, err := core.NewGIRG(girg.DefaultParams(1500), 3, girg.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	giant := nw.Giant()
	s, t := giant[0], giant[len(giant)-1]
	for _, proto := range []core.Protocol{core.ProtoGreedy, core.ProtoPhiDFS} {
		res, err := nw.Route(proto, s, t)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s delivered: %v\n", proto, res.Success)
	}
	// Output:
	// greedy delivered: true
	// phi-dfs delivered: true
}
