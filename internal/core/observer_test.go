package core

import (
	"reflect"
	"testing"

	"repro/internal/girg"
	"repro/internal/route"
)

// TestObserverFigure1Trajectory attaches an Observer to a greedy episode on a
// 5k-vertex GIRG and checks the event stream reproduces the Figure 1
// trajectory: the objective rises strictly along the whole path (the greedy
// invariant), and the weight profile is an arc — it climbs from a low-weight
// source into the network core and descends again toward a low-weight target.
func TestObserverFigure1Trajectory(t *testing.T) {
	// A sparse 5000-vertex GIRG with minimal-weight source and target planted
	// far apart on the torus — the hardest typical case, and the one Figure 1
	// depicts. Sparseness (small lambda) keeps paths long enough to show the
	// two phases; the seed scan is deterministic.
	params := girg.DefaultParams(5000)
	params.FixedN = true
	params.Lambda = 0.05
	planted := []girg.Plant{
		{Pos: []float64{0.1, 0.1}, W: params.WMin},
		{Pos: []float64{0.6, 0.6}, W: params.WMin},
	}
	var (
		nw     *Network
		events []route.MoveEvent
		res    route.Result
	)
	found := false
	for seed := uint64(1); seed < 60 && !found; seed++ {
		g, err := girg.Generate(params, seed, girg.Options{Planted: planted})
		if err != nil {
			t.Fatal(err)
		}
		cand := &Network{
			Graph: g,
			Label: "figure1",
			NewObjective: func(tgt int) route.Objective {
				return route.NewStandard(g, tgt)
			},
		}
		var evs []route.MoveEvent
		r, err := cand.Route(ProtoGreedy, 0, 1, route.ObserverFunc(func(ev route.MoveEvent) {
			evs = append(evs, ev)
		}))
		if err != nil {
			t.Fatal(err)
		}
		if r.Success && r.Moves >= 4 {
			nw, events, res, found = cand, evs, r, true
		}
	}
	if !found {
		t.Fatal("no greedy success with >= 4 moves between planted low-weight vertices; adjust the seed range")
	}

	// The stream mirrors the path: one event per position, in step order.
	if len(events) != len(res.Path) {
		t.Fatalf("%d events for a path of %d vertices", len(events), len(res.Path))
	}
	for i, ev := range events {
		if ev.Episode != 0 || ev.Step != i || ev.V != res.Path[i] {
			t.Fatalf("event %d = %+v, path vertex %d", i, ev, res.Path[i])
		}
		if ev.W != nw.Graph.Weight(ev.V) {
			t.Fatalf("event %d: W = %g, graph weight %g", i, ev.W, nw.Graph.Weight(ev.V))
		}
	}
	// And matches route.Trajectory, the library's own Figure 1 expansion.
	traj := route.Trajectory(nw.Graph, nw.NewObjective(res.Path[len(res.Path)-1]), res)
	for i, h := range traj {
		if events[i].V != h.V || events[i].W != h.W || events[i].Score != h.Score {
			t.Fatalf("event %d = %+v differs from trajectory hop %+v", i, events[i], h)
		}
	}

	// Objective strictly increasing along the whole path (greedy only moves
	// to strictly better neighbors).
	for i := 1; i < len(events); i++ {
		if !(events[i].Score > events[i-1].Score) {
			t.Fatalf("objective not strictly increasing at step %d: %g -> %g",
				i, events[i-1].Score, events[i].Score)
		}
	}
	// Weight arc: the first phase climbs to an interior peak well above both
	// endpoints (the message detours through the core).
	peak, peakAt := events[0].W, 0
	for i, ev := range events {
		if ev.W > peak {
			peak, peakAt = ev.W, i
		}
	}
	if peakAt == 0 || peakAt == len(events)-1 {
		t.Fatalf("weight peak at position %d of %d — no core detour", peakAt, len(events))
	}
	if peak <= events[0].W || peak <= events[len(events)-1].W {
		t.Fatalf("peak weight %g does not exceed endpoint weights %g, %g",
			peak, events[0].W, events[len(events)-1].W)
	}
}

// TestRunMilgramObserverDeterministic checks that the batch runner replays
// events grouped by episode in episode order, and that the stream is
// bit-identical across runs despite concurrent routing.
func TestRunMilgramObserverDeterministic(t *testing.T) {
	nw := girgNet(t, 1200, 45)
	collect := func() []route.MoveEvent {
		var events []route.MoveEvent
		_, err := RunMilgram(nw, MilgramConfig{
			Pairs: 15,
			Seed:  46,
			Observer: route.ObserverFunc(func(ev route.MoveEvent) {
				events = append(events, ev)
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	a := collect()
	if len(a) == 0 {
		t.Fatal("observer received no events")
	}

	episodes := map[int]bool{}
	lastEpisode, lastStep := -1, 0
	for i, ev := range a {
		if ev.Episode < lastEpisode {
			t.Fatalf("event %d: episode %d after episode %d — stream not grouped", i, ev.Episode, lastEpisode)
		}
		if ev.Episode > lastEpisode {
			if ev.Step != 0 {
				t.Fatalf("episode %d starts at step %d", ev.Episode, ev.Step)
			}
		} else if ev.Step != lastStep+1 {
			t.Fatalf("episode %d: step %d after step %d", ev.Episode, ev.Step, lastStep)
		}
		lastEpisode, lastStep = ev.Episode, ev.Step
		episodes[ev.Episode] = true
	}
	if len(episodes) != 15 {
		t.Fatalf("events cover %d episodes, want 15 (every episode has at least its source placement)", len(episodes))
	}

	if b := collect(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical batches produced different event streams")
	}
}
