package core

import (
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/route"
)

// Process-wide engine counters. Every routing episode that passes through
// the engine (Route, RunMilgram, RunMilgramCtx) is counted here with atomic
// increments; the aggregate is exported through expvar under
// "smallworld.engine" (visible on /debug/vars when the process serves HTTP)
// and snapshotted by Stats for tests and CLIs.
var engine = engineVars{taxonomy: make([]atomic.Int64, len(failureOrder))}

// failureOrder fixes the reporting order of the failure-taxonomy counters.
var failureOrder = route.Failures()

// failureIdx maps each classification to its taxonomy counter. Built once at
// init: failureIndex runs on every failed episode on the hot path, and a map
// probe is O(1) where the previous linear scan was O(taxonomy).
var failureIdx = func() map[route.Failure]int {
	m := make(map[route.Failure]int, len(failureOrder))
	for i, g := range failureOrder {
		m[g] = i
	}
	return m
}()

// failureIndex maps a classification to its taxonomy counter (-1 for
// FailNone or an unknown classification).
func failureIndex(f route.Failure) int {
	if i, ok := failureIdx[f]; ok {
		return i
	}
	return -1
}

// durBuckets is the number of log2 wall-time buckets: bucket b counts
// episodes with wall time in [2^(b-1), 2^b) microseconds (bucket 0 is
// < 1µs); the last bucket collects everything at or above 2^20 µs (~1 s).
const durBuckets = 22

type engineVars struct {
	episodes    atomic.Int64
	moves       atomic.Int64
	truncations atomic.Int64
	failures    atomic.Int64
	panics      atomic.Int64
	batches     atomic.Int64
	durations   [durBuckets]atomic.Int64
	durTotalUs  atomic.Int64   // summed episode wall time, microseconds
	taxonomy    []atomic.Int64 // indexed like failureOrder
}

func durBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= durBuckets {
		b = durBuckets - 1
	}
	return b
}

// durBucketLabel names bucket b by its exclusive upper bound.
func durBucketLabel(b int) string {
	if b == durBuckets-1 {
		return fmt.Sprintf(">=%v", time.Duration(1<<(durBuckets-2))*time.Microsecond)
	}
	return fmt.Sprintf("<%v", time.Duration(1<<b)*time.Microsecond)
}

// recordEpisode folds one finished episode into the engine counters.
func recordEpisode(res route.Result, d time.Duration) {
	engine.episodes.Add(1)
	engine.moves.Add(int64(res.Moves))
	if res.Truncated {
		engine.truncations.Add(1)
	}
	if !res.Success {
		engine.failures.Add(1)
	}
	// Classify the failure for the taxonomy counters. Hand-rolled external
	// protocols may fail without setting Failure; count those as dead ends so
	// the taxonomy stays complete.
	f := res.Failure
	if !res.Success && f == route.FailNone {
		f = route.FailDeadEnd
	}
	if i := failureIndex(f); i >= 0 {
		engine.taxonomy[i].Add(1)
	}
	engine.durations[durBucket(d)].Add(1)
	engine.durTotalUs.Add(int64(d / time.Microsecond))
}

// RecordEpisode folds an externally routed episode into the process-wide
// engine counters — the entry point for serving layers that route outside
// RouteEpisodeInto (the cluster hop path stitches per-shard segments itself)
// but still owe the expvar/Prometheus taxonomy an episode. res must be a
// terminal, classified result.
func RecordEpisode(res route.Result, d time.Duration) {
	recordEpisode(res, d)
}

// recordCancelled counts episodes a cancelled batch never ran. They appear
// only under the "cancelled" taxonomy counter — not in Episodes, Failures or
// the wall-time histogram, which all count episodes that actually routed.
func recordCancelled(n int) {
	if n > 0 {
		engine.taxonomy[failureIndex(route.FailCancelled)].Add(int64(n))
	}
}

// recordPanic counts an episode whose protocol panicked (the engine converts
// the panic to an error; see runEpisode).
func recordPanic() {
	engine.episodes.Add(1)
	engine.failures.Add(1)
	engine.panics.Add(1)
}

// EngineStats is a snapshot of the process-wide engine counters.
type EngineStats struct {
	// Episodes is the number of routing episodes finished by the engine.
	Episodes int64
	// Moves is the total number of message transmissions across episodes.
	Moves int64
	// Truncations counts episodes that hit a protocol's move cap.
	Truncations int64
	// Failures counts episodes that did not reach the target (including
	// panicked ones).
	Failures int64
	// Panics counts episodes whose protocol panicked (converted to errors).
	Panics int64
	// Batches is the number of RunMilgram/RunMilgramCtx invocations.
	Batches int64
	// FailureTaxonomy counts unsuccessful episodes by route.Failure
	// classification. Every taxonomy key is always present (zero-valued when
	// unseen) so dashboards can rely on the key set. "cancelled" counts
	// episodes skipped by cancelled batches, which the other counters omit
	// because those episodes never routed.
	FailureTaxonomy map[string]int64
	// EpisodeWallTime is a log2 histogram of per-episode wall time, keyed
	// by human-readable bucket labels. Every bucket is always present
	// (zero-valued when unseen), like FailureTaxonomy, so dashboards can
	// rely on a stable key set.
	EpisodeWallTime map[string]int64
	// WallTimeHist is the same histogram in exposition order with numeric
	// bounds — the form the Prometheus translation consumes (counts are
	// per-bucket, not cumulative). Excluded from the expvar JSON: the
	// overflow bound is +Inf, which encoding/json cannot represent (the
	// labelled map above is the JSON face of the histogram).
	WallTimeHist []DurationBucket `json:"-"`
	// WallTimeTotal is the summed wall time of all counted episodes
	// (microsecond resolution), the histogram's _sum.
	WallTimeTotal time.Duration
}

// DurationBucket is one bucket of the wall-time histogram.
type DurationBucket struct {
	// UpperSeconds is the bucket's exclusive upper bound in seconds
	// (math.Inf(1) for the overflow bucket).
	UpperSeconds float64
	// Count is the number of episodes that landed in this bucket.
	Count int64
}

// durBucketUpperSeconds is bucket b's exclusive upper bound in seconds:
// bucket b counts episodes with wall time in [2^(b-1), 2^b) microseconds.
func durBucketUpperSeconds(b int) float64 {
	if b == durBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<b) * 1e-6
}

// Stats snapshots the engine counters. Counters are process-wide and only
// ever grow; to meter one workload, diff two snapshots.
func Stats() EngineStats {
	s := EngineStats{
		Episodes:        engine.episodes.Load(),
		Moves:           engine.moves.Load(),
		Truncations:     engine.truncations.Load(),
		Failures:        engine.failures.Load(),
		Panics:          engine.panics.Load(),
		Batches:         engine.batches.Load(),
		FailureTaxonomy: map[string]int64{},
		EpisodeWallTime: map[string]int64{},
	}
	for i, f := range failureOrder {
		s.FailureTaxonomy[string(f)] = engine.taxonomy[i].Load()
	}
	s.WallTimeHist = make([]DurationBucket, durBuckets)
	for b := 0; b < durBuckets; b++ {
		c := engine.durations[b].Load()
		s.EpisodeWallTime[durBucketLabel(b)] = c
		s.WallTimeHist[b] = DurationBucket{UpperSeconds: durBucketUpperSeconds(b), Count: c}
	}
	s.WallTimeTotal = time.Duration(engine.durTotalUs.Load()) * time.Microsecond
	return s
}

func init() {
	expvar.Publish("smallworld.engine", expvar.Func(func() interface{} { return Stats() }))
}
