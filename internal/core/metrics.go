package core

import (
	"expvar"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/route"
)

// Process-wide engine counters. Every routing episode that passes through
// the engine (Route, RunMilgram, RunMilgramCtx) is counted here with atomic
// increments; the aggregate is exported through expvar under
// "smallworld.engine" (visible on /debug/vars when the process serves HTTP)
// and snapshotted by Stats for tests and CLIs.
var engine = engineVars{taxonomy: make([]atomic.Int64, len(failureOrder))}

// failureOrder fixes the reporting order of the failure-taxonomy counters.
var failureOrder = route.Failures()

// failureIndex maps a classification to its taxonomy counter (-1 for
// FailNone or an unknown classification).
func failureIndex(f route.Failure) int {
	for i, g := range failureOrder {
		if g == f {
			return i
		}
	}
	return -1
}

// durBuckets is the number of log2 wall-time buckets: bucket b counts
// episodes with wall time in [2^(b-1), 2^b) microseconds (bucket 0 is
// < 1µs); the last bucket collects everything at or above 2^20 µs (~1 s).
const durBuckets = 22

type engineVars struct {
	episodes    atomic.Int64
	moves       atomic.Int64
	truncations atomic.Int64
	failures    atomic.Int64
	panics      atomic.Int64
	batches     atomic.Int64
	durations   [durBuckets]atomic.Int64
	taxonomy    []atomic.Int64 // indexed like failureOrder
}

func durBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= durBuckets {
		b = durBuckets - 1
	}
	return b
}

// durBucketLabel names bucket b by its exclusive upper bound.
func durBucketLabel(b int) string {
	if b == durBuckets-1 {
		return fmt.Sprintf(">=%v", time.Duration(1<<(durBuckets-2))*time.Microsecond)
	}
	return fmt.Sprintf("<%v", time.Duration(1<<b)*time.Microsecond)
}

// recordEpisode folds one finished episode into the engine counters.
func recordEpisode(res route.Result, d time.Duration) {
	engine.episodes.Add(1)
	engine.moves.Add(int64(res.Moves))
	if res.Truncated {
		engine.truncations.Add(1)
	}
	if !res.Success {
		engine.failures.Add(1)
	}
	// Classify the failure for the taxonomy counters. Hand-rolled external
	// protocols may fail without setting Failure; count those as dead ends so
	// the taxonomy stays complete.
	f := res.Failure
	if !res.Success && f == route.FailNone {
		f = route.FailDeadEnd
	}
	if i := failureIndex(f); i >= 0 {
		engine.taxonomy[i].Add(1)
	}
	engine.durations[durBucket(d)].Add(1)
}

// recordCancelled counts episodes a cancelled batch never ran. They appear
// only under the "cancelled" taxonomy counter — not in Episodes, Failures or
// the wall-time histogram, which all count episodes that actually routed.
func recordCancelled(n int) {
	if n > 0 {
		engine.taxonomy[failureIndex(route.FailCancelled)].Add(int64(n))
	}
}

// recordPanic counts an episode whose protocol panicked (the engine converts
// the panic to an error; see runEpisode).
func recordPanic() {
	engine.episodes.Add(1)
	engine.failures.Add(1)
	engine.panics.Add(1)
}

// EngineStats is a snapshot of the process-wide engine counters.
type EngineStats struct {
	// Episodes is the number of routing episodes finished by the engine.
	Episodes int64
	// Moves is the total number of message transmissions across episodes.
	Moves int64
	// Truncations counts episodes that hit a protocol's move cap.
	Truncations int64
	// Failures counts episodes that did not reach the target (including
	// panicked ones).
	Failures int64
	// Panics counts episodes whose protocol panicked (converted to errors).
	Panics int64
	// Batches is the number of RunMilgram/RunMilgramCtx invocations.
	Batches int64
	// FailureTaxonomy counts unsuccessful episodes by route.Failure
	// classification. Every taxonomy key is always present (zero-valued when
	// unseen) so dashboards can rely on the key set. "cancelled" counts
	// episodes skipped by cancelled batches, which the other counters omit
	// because those episodes never routed.
	FailureTaxonomy map[string]int64
	// EpisodeWallTime is a log2 histogram of per-episode wall time, keyed
	// by human-readable bucket labels; empty buckets are omitted.
	EpisodeWallTime map[string]int64
}

// Stats snapshots the engine counters. Counters are process-wide and only
// ever grow; to meter one workload, diff two snapshots.
func Stats() EngineStats {
	s := EngineStats{
		Episodes:        engine.episodes.Load(),
		Moves:           engine.moves.Load(),
		Truncations:     engine.truncations.Load(),
		Failures:        engine.failures.Load(),
		Panics:          engine.panics.Load(),
		Batches:         engine.batches.Load(),
		FailureTaxonomy: map[string]int64{},
		EpisodeWallTime: map[string]int64{},
	}
	for i, f := range failureOrder {
		s.FailureTaxonomy[string(f)] = engine.taxonomy[i].Load()
	}
	for b := 0; b < durBuckets; b++ {
		if c := engine.durations[b].Load(); c > 0 {
			s.EpisodeWallTime[durBucketLabel(b)] = c
		}
	}
	return s
}

func init() {
	expvar.Publish("smallworld.engine", expvar.Func(func() interface{} { return Stats() }))
}
