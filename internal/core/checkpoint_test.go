package core

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/route"
)

func checkpointNetwork(t *testing.T) *Network {
	t.Helper()
	p := girg.DefaultParams(500)
	p.FixedN = true
	nw, err := NewGIRG(p, 11, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func openJournal(t *testing.T, dir string) *ckpt.Journal {
	t.Helper()
	j, err := ckpt.Open(dir, "core-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestCheckpointedMatchesPlain: journaling must not change the report — an
// uninterrupted checkpointed run and a plain run are bit-identical.
func TestCheckpointedMatchesPlain(t *testing.T) {
	nw := checkpointNetwork(t)
	cfg := MilgramConfig{Pairs: 120, Seed: 5, ComputeStretch: true}
	plain, err := RunMilgram(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = openJournal(t, t.TempDir())
	cfg.CheckpointBatch = 16
	ckpted, err := RunMilgram(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ckpted) {
		t.Fatalf("checkpointed run differs from plain run:\nplain:  %+v\nckpted: %+v", plain, ckpted)
	}
}

// TestCheckpointResumeBitIdentical is the crash-resume contract: cancel a
// checkpointed run mid-flight, resume it with the same journal, and the
// final report must equal an uninterrupted run's bit for bit.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	nw := checkpointNetwork(t)
	plan, err := faults.NewPlan(99, faults.Spec{Model: "edge-drop", Rate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	base := MilgramConfig{Pairs: 160, Seed: 7, Faults: plan, ComputeStretch: true}

	want, err := RunMilgram(nw, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// First attempt: cancel once a couple of batches are in. The objective
	// factory runs once per episode, so cancelling from it cuts the run off
	// deterministically enough to leave the journal part-filled.
	j := openJournal(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	interrupted := base
	interrupted.Checkpoint = j
	interrupted.CheckpointBatch = 16
	interrupted.Objective = func(tgt int) route.Objective {
		if started.Add(1) == 40 {
			cancel()
		}
		return nw.NewObjective(tgt)
	}
	rep, err := RunMilgramCtx(ctx, nw, interrupted)
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}
	if !rep.Partial {
		t.Fatalf("interrupted run not marked partial: %+v", rep)
	}
	reused := j.Len()
	if reused == 0 {
		t.Fatal("no batches journaled before cancellation")
	}
	if reused >= 160/16 {
		t.Fatalf("all %d batches journaled; cancellation landed too late to test resume", reused)
	}
	j.Close()

	// Resume: same configuration, same journal, fresh context. The default
	// objective is back in place — the counting wrapper above only existed
	// to trigger the cancellation.
	j2 := openJournal(t, dir)
	resumed := base
	resumed.Checkpoint = j2
	resumed.CheckpointBatch = 16
	got, err := RunMilgram(nw, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed report differs from uninterrupted run:\nwant: %+v\ngot:  %+v", want, got)
	}
	if j2.Reused() != reused {
		t.Fatalf("resume replayed %d records, journal held %d", j2.Reused(), reused)
	}
}

// TestCheckpointDifferentBatchSizeRecomputes: a journal written under a
// different batch size is simply not reused — the run recomputes and still
// matches the plain report.
func TestCheckpointDifferentBatchSizeRecomputes(t *testing.T) {
	nw := checkpointNetwork(t)
	base := MilgramConfig{Pairs: 64, Seed: 3, ComputeStretch: true}
	want, err := RunMilgram(nw, base)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	first := base
	first.Checkpoint = openJournal(t, dir)
	first.CheckpointBatch = 16
	if _, err := RunMilgram(nw, first); err != nil {
		t.Fatal(err)
	}
	second := base
	second.Checkpoint = openJournal(t, dir)
	second.CheckpointBatch = 32
	got, err := RunMilgram(nw, second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("mismatched-batch-size run differs from plain run")
	}
}

func TestCheckpointRejectsObserver(t *testing.T) {
	nw := checkpointNetwork(t)
	cfg := MilgramConfig{
		Pairs:      4,
		Checkpoint: openJournal(t, t.TempDir()),
		Observer:   route.ObserverFunc(func(route.MoveEvent) {}),
	}
	if _, err := RunMilgram(nw, cfg); err == nil {
		t.Fatal("observer + checkpoint accepted")
	}
}
