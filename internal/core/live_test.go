package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/xrand"
)

// liveNet attaches a deterministically churned overlay to a GIRG network
// and returns the network plus a second network over the overlay's
// materialization — the pair every equivalence check routes against.
func liveNet(t *testing.T, n float64, seed uint64, batches int) (*Network, *Network) {
	t.Helper()
	nw := girgNet(t, n, seed)
	o := graph.NewOverlay(nw.Graph)
	rng := xrand.New(seed + 100)
	dim := nw.Graph.Space().Dim()
	for b := 0; b < batches; b++ {
		e := o.Edit()
		pos := make([]float64, dim)
		for i := range pos {
			pos[i] = rng.Float64()
		}
		nv, err := e.AddVertex(pos, nw.Graph.WMin()*(1+rng.Float64()))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			u := rng.IntN(nv)
			if !e.Tombstoned(u) && !e.HasEdge(nv, u) {
				if err := e.AddEdge(nv, u); err != nil {
					t.Fatal(err)
				}
			}
		}
		for tries := 0; tries < 20; tries++ {
			v := rng.IntN(nw.Graph.N())
			if !e.Tombstoned(v) {
				if err := e.RemoveVertex(v); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		o = e.Finish()
	}
	if err := nw.SetOverlay(o); err != nil {
		t.Fatal(err)
	}
	mg, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	frozen := &Network{
		Graph:        mg,
		Label:        nw.Label + "+materialized",
		NewObjective: func(tgt int) route.Objective { return route.NewStandard(mg, tgt) },
		StandardPhi:  true,
	}
	return nw, frozen
}

// TestRunMilgramLiveMatchesMaterialized is the engine-level acceptance: a
// batch over the live overlay reports bit-identically to the same batch
// over the compacted snapshot, for every registered protocol, stretch
// included.
func TestRunMilgramLiveMatchesMaterialized(t *testing.T) {
	liveNW, frozen := liveNet(t, 800, 31, 12)
	for _, proto := range route.Registered() {
		cfg := MilgramConfig{Pairs: 60, Seed: 7, Protocol: Protocol(proto),
			WholeGraph: true, ComputeStretch: true}
		a, err := RunMilgram(liveNW, cfg)
		if err != nil {
			t.Fatalf("%s live: %v", proto, err)
		}
		b, err := RunMilgram(frozen, cfg)
		if err != nil {
			t.Fatalf("%s frozen: %v", proto, err)
		}
		if a.Attempts != b.Attempts || a.Success.P != b.Success.P ||
			a.MeanHops != b.MeanHops || a.Truncated != b.Truncated {
			t.Fatalf("%s: live %+v != frozen %+v", proto, a, b)
		}
		if len(a.Stretches) != len(b.Stretches) {
			t.Fatalf("%s: stretch count %d != %d", proto, len(a.Stretches), len(b.Stretches))
		}
		for i := range a.Stretches {
			if a.Stretches[i] != b.Stretches[i] {
				t.Fatalf("%s: stretch[%d] %v != %v", proto, i, a.Stretches[i], b.Stretches[i])
			}
		}
	}
}

func TestRouteEpisodeLiveMatchesMaterialized(t *testing.T) {
	liveNW, frozen := liveNet(t, 600, 33, 8)
	n := liveNW.LiveN()
	if n != frozen.Graph.N() {
		t.Fatalf("LiveN %d != materialized N %d", n, frozen.Graph.N())
	}
	rng := xrand.New(3)
	var sc route.Scratch
	var a, b route.Result
	for i := 0; i < 60; i++ {
		s, tgt := rng.IntN(n), rng.IntN(n)
		if s == tgt {
			continue
		}
		if err := liveNW.RouteEpisodeInto(EpisodeConfig{S: s, T: tgt}, &sc, &a); err != nil {
			t.Fatal(err)
		}
		if err := frozen.RouteEpisodeInto(EpisodeConfig{S: s, T: tgt}, &sc, &b); err != nil {
			t.Fatal(err)
		}
		if a.Success != b.Success || a.Moves != b.Moves || a.Failure != b.Failure {
			t.Fatalf("pair (%d,%d): live %+v != frozen %+v", s, tgt, a, b)
		}
	}
	// Added vertices are addressable: the highest live id is in range.
	if err := liveNW.RouteEpisodeInto(EpisodeConfig{S: n - 1, T: 0}, &sc, &a); err != nil {
		t.Fatalf("added vertex as source: %v", err)
	}
	// Beyond the live space is not.
	if err := liveNW.RouteEpisodeInto(EpisodeConfig{S: n, T: 0}, &sc, &a); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestLiveOverlayRejectsCustomObjectives(t *testing.T) {
	liveNW, _ := liveNet(t, 400, 35, 4)
	_, err := RunMilgram(liveNW, MilgramConfig{Pairs: 5, Seed: 1,
		Objective: func(tgt int) route.Objective { return route.NewGeometric(liveNW.Graph, tgt) }})
	if err == nil || !strings.Contains(err.Error(), "custom objective") {
		t.Fatalf("custom objective over live overlay: %v", err)
	}

	nonStd := girgNet(t, 400, 36)
	nonStd.StandardPhi = false
	o := graph.NewOverlay(nonStd.Graph)
	e := o.Edit()
	if err := e.RemoveVertex(0); err != nil {
		t.Fatal(err)
	}
	if err := nonStd.SetOverlay(e.Finish()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunMilgram(nonStd, MilgramConfig{Pairs: 5, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "standard-objective") {
		t.Fatalf("non-standard network with live overlay: %v", err)
	}
	if _, err := nonStd.Route("", 1, 2); err == nil {
		t.Fatal("Route over live overlay on a non-standard network succeeded")
	}
}

func TestSetOverlayValidatesBase(t *testing.T) {
	a := girgNet(t, 300, 37)
	b := girgNet(t, 300, 38)
	o := graph.NewOverlay(b.Graph)
	if err := a.SetOverlay(o); err == nil {
		t.Fatal("overlay over a foreign base accepted")
	}
	if err := a.SetOverlay(nil); err != nil {
		t.Fatal(err)
	}
	// An empty overlay routes the unchanged base fast path.
	if err := a.SetOverlay(graph.NewOverlay(a.Graph)); err != nil {
		t.Fatal(err)
	}
	r1, err := RunMilgram(a, MilgramConfig{Pairs: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.SetOverlay(nil)
	r2, err := RunMilgram(a, MilgramConfig{Pairs: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Success.P != r2.Success.P || r1.MeanHops != r2.MeanHops {
		t.Fatal("empty overlay changed routing results")
	}
}
