package core

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/girg"
	"repro/internal/hrg"
	"repro/internal/kleinberg"
	"repro/internal/route"
)

func girgNet(t testing.TB, n float64, seed uint64) *Network {
	t.Helper()
	p := girg.DefaultParams(n)
	p.FixedN = true
	nw, err := NewGIRG(p, seed, girg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewGIRGNetwork(t *testing.T) {
	nw := girgNet(t, 1000, 1)
	if nw.Graph.N() != 1000 {
		t.Fatalf("N = %d", nw.Graph.N())
	}
	if nw.Label == "" {
		t.Fatal("empty label")
	}
	obj := nw.NewObjective(5)
	if !math.IsInf(obj.Score(5), 1) {
		t.Fatal("objective target score")
	}
	if len(nw.Giant()) < 100 {
		t.Fatalf("giant size %d", len(nw.Giant()))
	}
	// Giant is cached: same slice.
	if &nw.Giant()[0] != &nw.Giant()[0] {
		t.Fatal("giant not cached")
	}
}

func TestNewHRGNetworkObjectives(t *testing.T) {
	p := hrg.DefaultParams(500)
	std, err := NewHRG(p, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	hyp, err := NewHRG(p, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same graph.
	if std.Graph.M() != hyp.Graph.M() {
		t.Fatal("same seed produced different graphs")
	}
	if std.Label == hyp.Label {
		t.Fatal("labels should distinguish objectives")
	}
}

func TestNewKleinbergNetworks(t *testing.T) {
	grid, err := NewKleinbergGrid(kleinberg.GridParams{L: 16, Q: 1, R: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Graph.N() != 256 {
		t.Fatalf("grid N = %d", grid.Graph.N())
	}
	cont, err := NewKleinbergContinuum(kleinberg.ContinuumParams{N: 200, Q: 1, AlphaDecay: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cont.Graph.N() != 200 {
		t.Fatalf("continuum N = %d", cont.Graph.N())
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		ProtoGreedy:          "greedy",
		ProtoPhiDFS:          "phi-dfs",
		ProtoHistory:         "history",
		ProtoGravityPressure: "gravity-pressure",
		ProtoLookahead:       "greedy+lookahead",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%q.String() = %q", string(p), p.String())
		}
	}
	if Protocol("").String() != "greedy" {
		t.Error("zero-value protocol must print as the greedy default")
	}
	// The report order starts with the five built-ins; externally
	// registered protocols (e.g. from other tests) follow.
	ps := Protocols()
	if len(ps) < 5 {
		t.Fatalf("Protocols() = %v, missing built-ins", ps)
	}
	for i, want := range []Protocol{ProtoGreedy, ProtoLookahead, ProtoPhiDFS, ProtoHistory, ProtoGravityPressure} {
		if ps[i] != want {
			t.Errorf("Protocols()[%d] = %q, want %q", i, ps[i], want)
		}
	}
}

func TestRouteDispatch(t *testing.T) {
	nw := girgNet(t, 800, 5)
	giant := nw.Giant()
	s, tgt := giant[0], giant[len(giant)-1]
	for _, proto := range Protocols() {
		res, err := nw.Route(proto, s, tgt)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if len(res.Path) == 0 || res.Path[0] != s {
			t.Fatalf("%v: bad path start", proto)
		}
	}
	if _, err := nw.Route(Protocol("no-such-protocol"), s, tgt); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := nw.Route(ProtoGreedy, -1, s); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestRunMilgramGreedy(t *testing.T) {
	nw := girgNet(t, 2000, 6)
	rep, err := RunMilgram(nw, MilgramConfig{Pairs: 150, Seed: 7, ComputeStretch: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 150 {
		t.Fatalf("attempts %d", rep.Attempts)
	}
	if rep.Success.P < 0.3 {
		t.Fatalf("greedy success %v too low", rep.Success.P)
	}
	if len(rep.Hops) == 0 || math.IsNaN(rep.MeanHops) {
		t.Fatal("no hop statistics")
	}
	if len(rep.Stretches) == 0 {
		t.Fatal("stretch requested but absent")
	}
	for _, st := range rep.Stretches {
		if st < 1 {
			t.Fatalf("stretch %v below 1 (greedy cannot beat BFS)", st)
		}
	}
}

func TestRunMilgramPatchedAlwaysSucceeds(t *testing.T) {
	nw := girgNet(t, 1500, 8)
	for _, proto := range []Protocol{ProtoPhiDFS, ProtoHistory} {
		rep, err := RunMilgram(nw, MilgramConfig{Pairs: 40, Protocol: proto, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Success.P != 1 {
			t.Fatalf("%v success %v within giant, want 1", proto, rep.Success.P)
		}
	}
}

func TestRunMilgramWholeGraphLowerSuccess(t *testing.T) {
	nw := girgNet(t, 2000, 10)
	inGiant, err := RunMilgram(nw, MilgramConfig{Pairs: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := RunMilgram(nw, MilgramConfig{Pairs: 200, Seed: 11, WholeGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Success.P > inGiant.Success.P {
		t.Fatalf("whole-graph success %v exceeds giant-only %v", whole.Success.P, inGiant.Success.P)
	}
}

func TestRunMilgramCustomObjective(t *testing.T) {
	nw := girgNet(t, 1000, 12)
	rep, err := RunMilgram(nw, MilgramConfig{
		Pairs: 50,
		Seed:  13,
		Objective: func(tgt int) route.Objective {
			return route.NewRelaxed(route.NewStandard(nw.Graph, tgt), nw.Graph, 0.1, 99)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success.P < 0.2 {
		t.Fatalf("relaxed success %v", rep.Success.P)
	}
}

func TestRunMilgramErrors(t *testing.T) {
	nw := girgNet(t, 500, 14)
	if _, err := RunMilgram(nw, MilgramConfig{Pairs: 0}); err == nil {
		t.Fatal("zero pairs accepted")
	}
	if _, err := RunMilgram(nw, MilgramConfig{Pairs: 10, Protocol: Protocol("bogus")}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunMilgramDeterministic(t *testing.T) {
	nw := girgNet(t, 1000, 15)
	a, err := RunMilgram(nw, MilgramConfig{Pairs: 60, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMilgram(nw, MilgramConfig{Pairs: 60, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if a.Success.P != b.Success.P || a.MeanHops != b.MeanHops {
		t.Fatal("same seed produced different reports")
	}
}

func TestRunMilgramParallelMatchesSequential(t *testing.T) {
	// The report must be bit-identical whether episodes run on one core or
	// many (pairs are drawn sequentially; episodes are pure).
	nw := girgNet(t, 1500, 17)
	cfg := MilgramConfig{Pairs: 80, Seed: 18, ComputeStretch: true, Protocol: ProtoPhiDFS}
	prev := runtime.GOMAXPROCS(1)
	seq, err := RunMilgram(nw, cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMilgram(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Success.P != par.Success.P || seq.MeanHops != par.MeanHops ||
		seq.MeanStretch != par.MeanStretch || seq.Truncated != par.Truncated {
		t.Fatalf("parallel run differs from sequential: %+v vs %+v", par, seq)
	}
	if len(seq.Hops) != len(par.Hops) {
		t.Fatal("hop counts differ")
	}
	for i := range seq.Hops {
		if seq.Hops[i] != par.Hops[i] {
			t.Fatalf("hop order differs at %d", i)
		}
	}
}
