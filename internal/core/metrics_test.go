package core

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/route"
)

// TestFailureIndexMap checks the init-built index agrees with the taxonomy
// order and rejects non-taxonomy classifications.
func TestFailureIndexMap(t *testing.T) {
	for want, f := range route.Failures() {
		if got := failureIndex(f); got != want {
			t.Errorf("failureIndex(%s) = %d, want %d", f, got, want)
		}
	}
	if got := failureIndex(route.FailNone); got != -1 {
		t.Errorf("failureIndex(FailNone) = %d, want -1", got)
	}
	if got := failureIndex(route.Failure("no-such-class")); got != -1 {
		t.Errorf("failureIndex(unknown) = %d, want -1", got)
	}
}

// TestStatsWallTimeBuckets checks the histogram's stable shape: every one of
// the 22 buckets present in both the labelled map and the exposition slice,
// matching counts, a +Inf overflow bound, and a sum that moves with recorded
// episodes.
func TestStatsWallTimeBuckets(t *testing.T) {
	before := Stats()
	if len(before.EpisodeWallTime) != durBuckets {
		t.Fatalf("EpisodeWallTime has %d keys, want %d", len(before.EpisodeWallTime), durBuckets)
	}
	if len(before.WallTimeHist) != durBuckets {
		t.Fatalf("WallTimeHist has %d buckets, want %d", len(before.WallTimeHist), durBuckets)
	}
	for b := 0; b < durBuckets; b++ {
		if got, ok := before.EpisodeWallTime[durBucketLabel(b)]; !ok {
			t.Errorf("bucket %q missing from EpisodeWallTime", durBucketLabel(b))
		} else if got != before.WallTimeHist[b].Count {
			t.Errorf("bucket %d: map %d != hist %d", b, got, before.WallTimeHist[b].Count)
		}
		if b > 0 && before.WallTimeHist[b].UpperSeconds <= before.WallTimeHist[b-1].UpperSeconds {
			t.Errorf("bucket bounds not increasing at %d", b)
		}
	}
	if !math.IsInf(before.WallTimeHist[durBuckets-1].UpperSeconds, 1) {
		t.Error("overflow bucket bound is not +Inf")
	}

	// 3ms lands in [2^11, 2^12) µs: bucket 12 (upper bound 2^12 µs).
	recordEpisode(route.Result{Success: true}, 3*time.Millisecond)
	after := Stats()
	if d := after.WallTimeHist[12].Count - before.WallTimeHist[12].Count; d != 1 {
		t.Errorf("3ms episode moved bucket 12 by %d, want 1", d)
	}
	if d := after.WallTimeTotal - before.WallTimeTotal; d != 3*time.Millisecond {
		t.Errorf("WallTimeTotal moved by %v, want 3ms", d)
	}
}

// TestStatsExpvarJSON guards the expvar face of the snapshot: the engine
// stats are published on /debug/vars via json.Marshal, and the histogram's
// +Inf bound must never leak into it (encoding/json rejects infinities).
func TestStatsExpvarJSON(t *testing.T) {
	b, err := json.Marshal(Stats())
	if err != nil {
		t.Fatalf("Stats() is not JSON-marshalable: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, leaked := decoded["WallTimeHist"]; leaked {
		t.Error("WallTimeHist leaked into the expvar JSON")
	}
	wt, ok := decoded["EpisodeWallTime"].(map[string]any)
	if !ok || len(wt) != durBuckets {
		t.Errorf("EpisodeWallTime in JSON has %d keys, want %d", len(wt), durBuckets)
	}
}
