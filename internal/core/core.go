// Package core is the public face of the library: it wraps the network
// models (GIRG, hyperbolic, Kleinberg) and routing protocols behind one
// Network/Protocol API and provides the Milgram-style experiment runner
// that all benchmarks and examples are built on — sample source/target
// pairs, route a message with a chosen protocol, and report success rates,
// hop counts and stretch.
package core

import (
	"fmt"

	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/hrg"
	"repro/internal/kleinberg"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Network bundles a sampled graph with the objective its model routes by.
type Network struct {
	// Graph is the sampled network.
	Graph *graph.Graph
	// Label describes the instance for reports.
	Label string
	// NewObjective builds the routing objective toward target t. The
	// default models use the paper's phi; hyperbolic networks may use
	// phi_H, Kleinberg grids use lattice distance.
	NewObjective func(t int) route.Objective

	giant []int // lazily computed giant component
}

// NewGIRG samples a GIRG network routing by the standard objective phi.
func NewGIRG(p girg.Params, seed uint64, opts girg.Options) (*Network, error) {
	g, err := girg.Generate(p, seed, opts)
	if err != nil {
		return nil, err
	}
	return &Network{
		Graph: g,
		Label: fmt.Sprintf("girg(n=%g,d=%d,beta=%g,alpha=%g)", p.N, p.Dim, p.Beta, p.Alpha),
		NewObjective: func(t int) route.Objective {
			return route.NewStandard(g, t)
		},
	}, nil
}

// NewHRG samples a hyperbolic random graph. With hyperbolicObjective it
// routes by the geometric objective phi_H (Corollary 3.6); otherwise by the
// standard GIRG phi of the Section 11 embedding.
func NewHRG(p hrg.Params, seed uint64, hyperbolicObjective bool) (*Network, error) {
	// Beyond ~30k vertices the quadratic sampler dominates runtime; the
	// layered Fermi-Dirac sampler draws from the identical distribution.
	gen := hrg.Generate
	if p.N > 30000 {
		gen = hrg.GenerateFast
	}
	g, err := gen(p, seed)
	if err != nil {
		return nil, err
	}
	obj := func(t int) route.Objective { return route.NewStandard(g, t) }
	label := fmt.Sprintf("hrg(n=%d,alphaH=%g,T=%g,phi)", p.N, p.AlphaH, p.TH)
	if hyperbolicObjective {
		obj = func(t int) route.Objective { return hrg.NewObjective(p, g, t) }
		label = fmt.Sprintf("hrg(n=%d,alphaH=%g,T=%g,phiH)", p.N, p.AlphaH, p.TH)
	}
	return &Network{Graph: g, Label: label, NewObjective: obj}, nil
}

// NewKleinbergGrid samples Kleinberg's lattice model routing by lattice
// distance.
func NewKleinbergGrid(p kleinberg.GridParams, seed uint64) (*Network, error) {
	gr, err := kleinberg.GenerateGrid(p, seed)
	if err != nil {
		return nil, err
	}
	return &Network{
		Graph:        gr.Graph(),
		Label:        fmt.Sprintf("kleinberg(L=%d,q=%d,r=%g)", p.L, p.Q, p.R),
		NewObjective: gr.Objective,
	}, nil
}

// NewKleinbergContinuum samples the lattice-free continuum variant routing
// by geometric distance.
func NewKleinbergContinuum(p kleinberg.ContinuumParams, seed uint64) (*Network, error) {
	g, err := kleinberg.GenerateContinuum(p, seed)
	if err != nil {
		return nil, err
	}
	return &Network{
		Graph: g,
		Label: fmt.Sprintf("kleinberg-continuum(n=%d,q=%d,alpha=%g)", p.N, p.Q, p.AlphaDecay),
		NewObjective: func(t int) route.Objective {
			return route.NewGeometric(g, t)
		},
	}, nil
}

// Giant returns the vertex ids of the largest component (cached).
func (nw *Network) Giant() []int {
	if nw.giant == nil {
		nw.giant = graph.GiantComponent(nw.Graph)
	}
	return nw.giant
}

// Protocol selects the routing protocol.
type Protocol int

const (
	// ProtoGreedy is the pure greedy protocol of Algorithm 1.
	ProtoGreedy Protocol = iota + 1
	// ProtoPhiDFS is the paper's Algorithm 2 patching protocol.
	ProtoPhiDFS
	// ProtoHistory is the message-history patching protocol (Section 5,
	// first example).
	ProtoHistory
	// ProtoGravityPressure is the gravity-pressure heuristic (violates P3).
	ProtoGravityPressure
	// ProtoLookahead is greedy routing on the one-hop lookahead objective
	// ("know thy neighbor's neighbor", related work of Section 1.1).
	ProtoLookahead
)

// String names the protocol for reports.
func (p Protocol) String() string {
	switch p {
	case ProtoGreedy:
		return "greedy"
	case ProtoPhiDFS:
		return "phi-dfs"
	case ProtoHistory:
		return "history"
	case ProtoGravityPressure:
		return "gravity-pressure"
	case ProtoLookahead:
		return "greedy+lookahead"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Protocols lists all implemented protocols in report order.
func Protocols() []Protocol {
	return []Protocol{ProtoGreedy, ProtoLookahead, ProtoPhiDFS, ProtoHistory, ProtoGravityPressure}
}

// Route runs one routing episode from s to t under the given protocol.
func (nw *Network) Route(proto Protocol, s, t int) (route.Result, error) {
	return nw.routeWith(proto, nw.NewObjective(t), s)
}

// routeWith dispatches a routing episode under an explicit objective.
func (nw *Network) routeWith(proto Protocol, obj route.Objective, s int) (route.Result, error) {
	switch proto {
	case ProtoGreedy:
		return route.Greedy(nw.Graph, obj, s), nil
	case ProtoPhiDFS:
		return route.PhiDFS{}.Route(nw.Graph, obj, s), nil
	case ProtoHistory:
		return route.HistoryPatch{}.Route(nw.Graph, obj, s), nil
	case ProtoGravityPressure:
		return route.GravityPressure{}.Route(nw.Graph, obj, s), nil
	case ProtoLookahead:
		return route.Greedy(nw.Graph, route.NewLookahead(nw.Graph, obj), s), nil
	default:
		return route.Result{}, fmt.Errorf("core: unknown protocol %d", int(proto))
	}
}

// MilgramConfig configures a batch routing experiment.
type MilgramConfig struct {
	// Pairs is the number of (s, t) routings to attempt.
	Pairs int
	// Protocol selects the routing protocol (default ProtoGreedy).
	Protocol Protocol
	// Seed drives pair selection.
	Seed uint64
	// WholeGraph samples pairs from all vertices instead of the giant
	// component (greedy then also fails on isolated/small components, as
	// in Milgram's real experiment).
	WholeGraph bool
	// ComputeStretch additionally runs a BFS per pair to report stretch
	// (hop count divided by shortest-path distance).
	ComputeStretch bool
	// Objective optionally overrides the network's objective factory
	// (e.g. relaxed objectives for E7).
	Objective func(t int) route.Objective
}

// MilgramReport aggregates a batch routing experiment.
type MilgramReport struct {
	// Attempts is the number of routed pairs.
	Attempts int
	// Success is the success proportion with its Wilson interval.
	Success stats.Proportion
	// Hops are the move counts of successful routings.
	Hops []float64
	// Stretches are per-pair hop/BFS-distance ratios of successful
	// routings (empty unless ComputeStretch).
	Stretches []float64
	// MeanHops and MeanStretch summarize the two slices (NaN when empty).
	MeanHops    float64
	MeanStretch float64
	// Truncated counts episodes that hit a protocol's move cap.
	Truncated int
}

// RunMilgram samples random source/target pairs and routes between them.
// Pair selection is sequential (one seeded stream); the routing episodes
// themselves are pure functions of the pairs and run on all cores, so the
// report is bit-identical to a sequential run. Custom Objective factories
// must therefore be safe to call concurrently (the built-in ones are).
func RunMilgram(nw *Network, cfg MilgramConfig) (MilgramReport, error) {
	if cfg.Pairs <= 0 {
		return MilgramReport{}, fmt.Errorf("core: non-positive pair count %d", cfg.Pairs)
	}
	proto := cfg.Protocol
	if proto == 0 {
		proto = ProtoGreedy
	}
	pool := nw.Giant()
	if cfg.WholeGraph {
		pool = nil
	}
	if !cfg.WholeGraph && len(pool) < 2 {
		return MilgramReport{}, fmt.Errorf("core: giant component too small (%d)", len(pool))
	}
	if cfg.WholeGraph && nw.Graph.N() < 2 {
		return MilgramReport{}, fmt.Errorf("core: graph too small")
	}
	// Validate the protocol up front so workers cannot fail.
	switch proto {
	case ProtoGreedy, ProtoPhiDFS, ProtoHistory, ProtoGravityPressure, ProtoLookahead:
	default:
		return MilgramReport{}, fmt.Errorf("core: unknown protocol %d", int(proto))
	}

	// Draw all pairs from one sequential stream.
	rng := xrand.New(cfg.Seed)
	pick := func() int {
		if pool != nil {
			return pool[rng.IntN(len(pool))]
		}
		return rng.IntN(nw.Graph.N())
	}
	type pair struct{ s, t int }
	pairs := make([]pair, 0, cfg.Pairs)
	for len(pairs) < cfg.Pairs {
		s, t := pick(), pick()
		if s != t {
			pairs = append(pairs, pair{s, t})
		}
	}

	// Route every pair; episodes are deterministic and independent.
	type episode struct {
		success   bool
		truncated bool
		moves     int
		stretch   float64 // 0 when not computed or failed
	}
	episodes := make([]episode, len(pairs))
	par.ForEach(len(pairs), 0, func(i int) {
		p := pairs[i]
		obj := nw.NewObjective(p.t)
		if cfg.Objective != nil {
			obj = cfg.Objective(p.t)
		}
		res, _ := nw.routeWith(proto, obj, p.s) // protocol validated above
		ep := episode{success: res.Success, truncated: res.Truncated, moves: res.Moves}
		if res.Success && cfg.ComputeStretch {
			if d := graph.BFSDistance(nw.Graph, p.s, p.t); d > 0 {
				ep.stretch = float64(res.Moves) / float64(d)
			}
		}
		episodes[i] = ep
	})

	rep := MilgramReport{Attempts: len(pairs)}
	successes := 0
	for _, ep := range episodes {
		if ep.truncated {
			rep.Truncated++
		}
		if !ep.success {
			continue
		}
		successes++
		rep.Hops = append(rep.Hops, float64(ep.moves))
		if ep.stretch > 0 {
			rep.Stretches = append(rep.Stretches, ep.stretch)
		}
	}
	rep.Success = stats.NewProportion(successes, rep.Attempts)
	rep.MeanHops = stats.Mean(rep.Hops)
	rep.MeanStretch = stats.Mean(rep.Stretches)
	return rep, nil
}
