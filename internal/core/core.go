// Package core is the public face of the library: it wraps the network
// models (GIRG, hyperbolic, Kleinberg) behind one Network API, dispatches
// routing through a pluggable protocol registry, and provides the
// instrumented Milgram-style experiment runner that all benchmarks and
// examples are built on — sample source/target pairs, route a message with
// a chosen protocol, and report success rates, hop counts and stretch.
//
// Protocols are route.Protocol values addressed by registered name; the
// five built-ins self-register and new ones plug in via Register without
// touching this package. Every episode feeds process-wide atomic counters
// (exported via expvar as "smallworld.engine", snapshotted by Stats), an
// optional route.Observer streams per-move trajectories, and RunMilgramCtx
// threads context cancellation through the parallel batch runner.
//
// The engine is resilient by construction: per-episode hop and wall-time
// budgets (MilgramConfig.MaxHops, EpisodeTimeout) turn hangs into counted
// route.FailDeadline failures, a faults.Plan layers injectable fault models
// over every episode, episodes whose endpoint a fault plan crashed are
// classified route.FailCrashedTarget without running the protocol, a
// cancelled batch returns the partial report of its completed episodes
// (MilgramReport.Partial), and a panicking protocol or fault model fails
// only its batch with an error naming the episode.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/faults"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/hrg"
	"repro/internal/kleinberg"
	"repro/internal/par"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Network bundles a sampled graph with the objective its model routes by.
type Network struct {
	// Graph is the sampled network.
	Graph *graph.Graph
	// Label describes the instance for reports.
	Label string
	// NewObjective builds the routing objective toward target t. The
	// default models use the paper's phi; hyperbolic networks may use
	// phi_H, Kleinberg grids use lattice distance.
	NewObjective func(t int) route.Objective
	// StandardPhi declares that NewObjective is exactly the standard GIRG
	// objective route.NewStandard(Graph, t) — the promise that lets the
	// engine take the concrete zero-allocation fast path (route.GreedyCSR)
	// for greedy episodes instead of building an Objective closure per
	// episode. Constructors that route by anything else (phi_H, lattice
	// distance, custom factories) leave it false and routing falls back to
	// the interface path; setting it untruthfully changes routing results.
	StandardPhi bool

	giant []int // lazily computed giant component

	// live is the optionally attached copy-on-write overlay (see live.go);
	// routing loads it atomically so mutation batches publish without
	// tearing episodes. Networks are addressed by pointer — the atomic
	// field makes copying a Network a vet error by design.
	live atomic.Pointer[graph.Overlay]
}

// NewGIRG samples a GIRG network routing by the standard objective phi.
func NewGIRG(p girg.Params, seed uint64, opts girg.Options) (*Network, error) {
	g, err := girg.Generate(p, seed, opts)
	if err != nil {
		return nil, err
	}
	return &Network{
		Graph: g,
		Label: fmt.Sprintf("girg(n=%g,d=%d,beta=%g,alpha=%g)", p.N, p.Dim, p.Beta, p.Alpha),
		NewObjective: func(t int) route.Objective {
			return route.NewStandard(g, t)
		},
		StandardPhi: true,
	}, nil
}

// NewHRG samples a hyperbolic random graph. With hyperbolicObjective it
// routes by the geometric objective phi_H (Corollary 3.6); otherwise by the
// standard GIRG phi of the Section 11 embedding.
func NewHRG(p hrg.Params, seed uint64, hyperbolicObjective bool) (*Network, error) {
	// Beyond ~30k vertices the quadratic sampler dominates runtime; the
	// layered Fermi-Dirac sampler draws from the identical distribution.
	gen := hrg.Generate
	if p.N > 30000 {
		gen = hrg.GenerateFast
	}
	g, err := gen(p, seed)
	if err != nil {
		return nil, err
	}
	obj := func(t int) route.Objective { return route.NewStandard(g, t) }
	label := fmt.Sprintf("hrg(n=%d,alphaH=%g,T=%g,phi)", p.N, p.AlphaH, p.TH)
	if hyperbolicObjective {
		obj = func(t int) route.Objective { return hrg.NewObjective(p, g, t) }
		label = fmt.Sprintf("hrg(n=%d,alphaH=%g,T=%g,phiH)", p.N, p.AlphaH, p.TH)
	}
	return &Network{Graph: g, Label: label, NewObjective: obj, StandardPhi: !hyperbolicObjective}, nil
}

// NewKleinbergGrid samples Kleinberg's lattice model routing by lattice
// distance.
func NewKleinbergGrid(p kleinberg.GridParams, seed uint64) (*Network, error) {
	gr, err := kleinberg.GenerateGrid(p, seed)
	if err != nil {
		return nil, err
	}
	return &Network{
		Graph:        gr.Graph(),
		Label:        fmt.Sprintf("kleinberg(L=%d,q=%d,r=%g)", p.L, p.Q, p.R),
		NewObjective: gr.Objective,
	}, nil
}

// NewKleinbergContinuum samples the lattice-free continuum variant routing
// by geometric distance.
func NewKleinbergContinuum(p kleinberg.ContinuumParams, seed uint64) (*Network, error) {
	g, err := kleinberg.GenerateContinuum(p, seed)
	if err != nil {
		return nil, err
	}
	return &Network{
		Graph: g,
		Label: fmt.Sprintf("kleinberg-continuum(n=%d,q=%d,alpha=%g)", p.N, p.Q, p.AlphaDecay),
		NewObjective: func(t int) route.Objective {
			return route.NewGeometric(g, t)
		},
	}, nil
}

// Giant returns the vertex ids of the largest component of the base graph
// (cached). With a live overlay attached the membership is a snapshot of
// the base: churn can tombstone pool vertices (their episodes fail as dead
// ends, which is the measurement E17 wants) and added vertices join the
// pool only after a compaction folds them into the base.
func (nw *Network) Giant() []int {
	if nw.giant == nil {
		nw.giant = graph.GiantComponent(nw.Graph)
	}
	return nw.giant
}

// Route runs one routing episode from s to t under the named protocol (the
// zero value selects greedy). Observers, if any, receive the episode's
// per-move events (step order, episode 0) after the episode finishes.
func (nw *Network) Route(proto Protocol, s, t int, obs ...route.Observer) (route.Result, error) {
	p, err := resolve(proto)
	if err != nil {
		return route.Result{}, err
	}
	g, obj := route.Graph(nw.Graph), route.Objective{}
	if ov, live := nw.liveView(); live {
		if err := nw.checkLive(false); err != nil {
			return route.Result{}, err
		}
		if s < 0 || s >= ov.N() || t < 0 || t >= ov.N() {
			return route.Result{}, fmt.Errorf("core: vertex pair (%d, %d) out of range (n = %d)", s, t, ov.N())
		}
		g, obj = ov, route.NewStandard(ov, t)
	} else {
		if s < 0 || s >= nw.Graph.N() || t < 0 || t >= nw.Graph.N() {
			return route.Result{}, fmt.Errorf("core: vertex pair (%d, %d) out of range (n = %d)", s, t, nw.Graph.N())
		}
		obj = nw.NewObjective(t)
	}
	res, err := runEpisode(g, p, obj, s, 0, 0)
	if err != nil {
		return route.Result{}, err
	}
	for _, o := range obs {
		if o != nil {
			route.Observe(g, obj, res, 0, o)
		}
	}
	return res, nil
}

// budgetStop is the sentinel the budget guard panics with to unwind opaque
// protocol code once an episode exhausts its hop or wall-time budget;
// runEpisode recovers it and classifies the episode route.FailDeadline.
type budgetStop struct{}

// budgetGraph enforces per-episode budgets at the one point every protocol
// must pass through: adjacency queries. The hop budget counts queries — a
// deterministic proxy for hops, since greedy-style protocols query each
// visited vertex once — so budget cuts land on the same query at any worker
// count. The wall-time budget is checked on the same path; it is inherently
// nondeterministic and meant as a hang backstop, not a reproducible cutoff.
type budgetGraph struct {
	inner      route.Graph
	maxQueries int       // 0 = unlimited
	deadline   time.Time // zero = no wall-time budget
	queries    int
}

func (b *budgetGraph) N() int               { return b.inner.N() }
func (b *budgetGraph) Weight(v int) float64 { return b.inner.Weight(v) }

func (b *budgetGraph) Neighbors(v int) []int32 {
	b.queries++
	if b.maxQueries > 0 && b.queries > b.maxQueries {
		panic(budgetStop{})
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		panic(budgetStop{})
	}
	return b.inner.Neighbors(v)
}

// workerState is the reusable per-worker routing state of a batch run: the
// scratch buffers and the Result every episode of one worker builds into.
// par.ForEachWorkerCtx guarantees one worker index never runs concurrently
// with itself, so the state needs no locking.
type workerState struct {
	sc  route.Scratch
	out route.Result
}

// runEpisode runs one protocol episode into a fresh Result. It is the
// adapter over runEpisodeInto that the single-route entry points use; batch
// engines call runEpisodeInto directly with per-worker scratch.
func runEpisode(g route.Graph, p route.Protocol, obj route.Objective, s int, maxHops int, timeout time.Duration) (route.Result, error) {
	var res route.Result
	if err := runEpisodeInto(g, p, obj, s, maxHops, timeout, nil, &res); err != nil {
		return route.Result{}, err
	}
	return res, nil
}

// runEpisodeInto runs one protocol episode into the caller-owned out
// (reusing its Path backing array) over the caller's scratch, feeding the
// engine counters, enforcing the optional hop and wall-time budgets, and
// converting a protocol panic (possible with externally registered
// protocols) into an error instead of tearing down the whole batch. A
// budget cut is not an error: out becomes a failed Result classified
// route.FailDeadline whose path is just the source (the protocol's internal
// state is opaque, so the partial trajectory is not recoverable).
func runEpisodeInto(g route.Graph, p route.Protocol, obj route.Objective, s int, maxHops int, timeout time.Duration, sc *route.Scratch, out *route.Result) (err error) {
	start := time.Now()
	if maxHops > 0 || timeout > 0 {
		bg := &budgetGraph{inner: g, maxQueries: maxHops}
		if timeout > 0 {
			bg.deadline = start.Add(timeout)
		}
		g = bg
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(budgetStop); ok {
			*out = route.Result{Path: append(out.Path[:0], s), Unique: 1, Stuck: -1, Failure: route.FailDeadline}
			recordEpisode(*out, time.Since(start))
			err = nil
			return
		}
		recordPanic()
		err = fmt.Errorf("core: protocol %q panicked routing from %d: %v", p.Name(), s, r)
	}()
	route.RouteInto(p, g, obj, s, sc, out)
	recordEpisode(*out, time.Since(start))
	return nil
}

// MilgramConfig configures a batch routing experiment.
type MilgramConfig struct {
	// Pairs is the number of (s, t) routings to attempt.
	Pairs int
	// Protocol selects the routing protocol by registered name. The zero
	// value "" explicitly means the default protocol, greedy — so a
	// zero-valued config routes greedily rather than erroring. Any other
	// value must be a registered name; unknown names fail with an error
	// listing the registered protocols.
	Protocol Protocol
	// Seed drives pair selection.
	Seed uint64
	// WholeGraph samples pairs from all vertices instead of the giant
	// component (greedy then also fails on isolated/small components, as
	// in Milgram's real experiment).
	WholeGraph bool
	// ComputeStretch additionally runs a BFS per pair to report stretch
	// (hop count divided by shortest-path distance).
	ComputeStretch bool
	// Objective optionally overrides the network's objective factory
	// (e.g. relaxed objectives for E7).
	Objective func(t int) route.Objective
	// MaxHops caps the adjacency queries an episode may make before the
	// engine cuts it off as route.FailDeadline (0 = no engine cap; protocols
	// keep their own move caps, reported as route.FailTruncated). Queries
	// are a deterministic proxy for hops — greedy-style protocols query each
	// visited vertex once — so the cap lands identically at any worker count.
	MaxHops int
	// EpisodeTimeout caps an episode's wall time, turning a hung or
	// pathologically slow episode into a counted route.FailDeadline failure
	// instead of a stalled batch. Unlike MaxHops it is nondeterministic;
	// use it as a backstop, not as a reproducible cutoff. 0 disables it.
	EpisodeTimeout time.Duration
	// Faults layers a fault-injection plan over every episode: the plan is
	// bound to the graph once per batch, then each episode routes on its own
	// faulty view (see package faults). Episodes whose source or target the
	// plan crashed are classified route.FailCrashedTarget without running
	// the protocol. nil injects nothing.
	Faults *faults.Plan
	// Observer, when non-nil, receives the per-move events of every
	// episode after the batch has routed: events arrive grouped by episode
	// in episode order, each episode in step order, so the stream is
	// deterministic even though episodes route concurrently. Setting an
	// Observer retains every episode's path until replay — use it for
	// analysis runs, not for the largest benchmark batches.
	Observer route.Observer
	// Checkpoint, when non-nil, makes the run crash-safe: episodes execute
	// in fixed batches whose results are journaled as they complete, and
	// batches the journal already holds are replayed instead of recomputed.
	// Because episodes are pure functions of their index, a killed run that
	// resumes with the same configuration and journal produces a report
	// bit-identical to an uninterrupted one. Incompatible with Observer
	// (episode paths are not journaled). See package ckpt.
	Checkpoint *ckpt.Journal
	// CheckpointKey namespaces this run's records inside the journal — set
	// it to the sweep-cell id when many RunMilgram calls share one journal.
	// Empty means "milgram".
	CheckpointKey string
	// CheckpointBatch is the number of episodes per journal record
	// (default 64): the most work a crash can lose per run, and the
	// granularity at which a resume skips ahead.
	CheckpointBatch int
}

// MilgramReport aggregates a batch routing experiment.
type MilgramReport struct {
	// Attempts is the number of routed pairs.
	Attempts int
	// Success is the success proportion with its Wilson interval.
	Success stats.Proportion
	// Hops are the move counts of successful routings.
	Hops []float64
	// Stretches are per-pair hop/BFS-distance ratios of successful
	// routings (empty unless ComputeStretch).
	Stretches []float64
	// MeanHops and MeanStretch summarize the two slices (NaN when empty).
	MeanHops    float64
	MeanStretch float64
	// Truncated counts episodes that hit a protocol's move cap.
	Truncated int
	// Failures counts the attempted-but-unsuccessful episodes by
	// classification (see route.Failures). Cancelled episodes never ran and
	// are counted by Cancelled instead, not here.
	Failures map[route.Failure]int
	// Partial reports that the batch was cancelled mid-run: the report
	// aggregates only the episodes that completed before cancellation and is
	// returned alongside the context's error instead of being dropped.
	Partial bool
	// Cancelled counts the episodes a cancelled batch never ran
	// (Attempts + Cancelled = MilgramConfig.Pairs on a partial report).
	Cancelled int
}

// RunMilgram samples random source/target pairs and routes between them.
// Pair selection is sequential (one seeded stream); the routing episodes
// themselves are pure functions of the pairs and run on all cores, so the
// report is bit-identical to a sequential run. Custom Objective factories
// must therefore be safe to call concurrently (the built-in ones are).
func RunMilgram(nw *Network, cfg MilgramConfig) (MilgramReport, error) {
	return RunMilgramCtx(context.Background(), nw, cfg)
}

// RunMilgramCtx is RunMilgram with cooperative cancellation: episodes are
// fanned out in chunks and ctx is re-checked between chunks, so a cancelled
// context (or an expired deadline) aborts the batch within a few episodes
// and returns ctx.Err(). A ctx that is already done on entry returns an
// empty report before routing any pair. A batch cancelled mid-run returns
// the partial report of its completed episodes (Partial set, Cancelled
// counting the rest) alongside ctx.Err(), so long chaos sweeps keep the
// work they finished.
func RunMilgramCtx(ctx context.Context, nw *Network, cfg MilgramConfig) (MilgramReport, error) {
	if err := ctx.Err(); err != nil {
		return MilgramReport{}, err
	}
	if cfg.Pairs <= 0 {
		return MilgramReport{}, fmt.Errorf("core: non-positive pair count %d", cfg.Pairs)
	}
	if cfg.Checkpoint != nil && cfg.Observer != nil {
		return MilgramReport{}, fmt.Errorf("core: checkpointed runs do not support observers (episode paths are not journaled)")
	}
	proto, err := resolve(cfg.Protocol)
	if err != nil {
		return MilgramReport{}, err
	}
	// Load the live overlay once per batch: every episode of this run sees
	// the same epoch, whatever the mutation log publishes meanwhile.
	ov, live := nw.liveView()
	if live {
		if err := nw.checkLive(cfg.Objective != nil); err != nil {
			return MilgramReport{}, err
		}
	}
	liveG := route.Graph(nw.Graph)
	liveN := nw.Graph.N()
	if live {
		liveG, liveN = ov, ov.N()
	}
	pool := nw.Giant()
	if cfg.WholeGraph {
		pool = nil
	}
	if !cfg.WholeGraph && len(pool) < 2 {
		return MilgramReport{}, fmt.Errorf("core: giant component too small (%d)", len(pool))
	}
	if cfg.WholeGraph && liveN < 2 {
		return MilgramReport{}, fmt.Errorf("core: graph too small")
	}
	engine.batches.Add(1)

	// Draw all pairs from one sequential stream.
	rng := xrand.New(cfg.Seed)
	pick := func() int {
		if pool != nil {
			return pool[rng.IntN(len(pool))]
		}
		return rng.IntN(liveN)
	}
	type pair struct{ s, t int }
	pairs := make([]pair, 0, cfg.Pairs)
	for len(pairs) < cfg.Pairs {
		s, t := pick(), pick()
		if s != t {
			pairs = append(pairs, pair{s, t})
		}
	}

	objective := nw.NewObjective
	if cfg.Objective != nil {
		objective = cfg.Objective
	}
	if live {
		// The overlay's own geometry must drive scoring, or added vertices
		// index past the base objective's arrays (checkLive already rejected
		// custom overrides and non-standard networks).
		objective = func(t int) route.Objective { return route.NewStandard(ov, t) }
	}

	// Bind the fault plan once per batch; episodes then instantiate cheap
	// per-episode faulty views keyed by their episode index, so fault
	// decisions are independent of worker count and scheduling. With a live
	// overlay the plan binds to the overlay view, so fault draws cover added
	// vertices too.
	bound := cfg.Faults.Bind(liveG)

	// Route every pair; episodes are deterministic and independent. Each
	// worker owns one workerState whose scratch buffers and Result are
	// reused across every episode that worker runs, so steady-state batch
	// routing stops allocating a Result path per episode. Greedy episodes on
	// a standard-phi network additionally skip the per-episode Objective
	// closure entirely through the concrete CSR fast path.
	workers := par.Workers(len(pairs), 0)
	states := make([]workerState, workers)
	_, isGreedy := proto.(route.GreedyRouter)
	csrFast := isGreedy && nw.StandardPhi && cfg.Objective == nil && bound.Empty()
	episodes := make([]episode, len(pairs))
	runOne := func(w, i int) {
		ws := &states[w]
		p := pairs[i]
		if !bound.Empty() && (bound.Crashed(p.s) || bound.Crashed(p.t)) {
			// Delivery from/to a crashed vertex is impossible; classify
			// without running the protocol (the episode still counts).
			recordEpisode(route.Result{Path: []int{p.s}, Unique: 1, Stuck: -1,
				Failure: route.FailCrashedTarget}, 0)
			episodes[i] = episode{done: true, failure: route.FailCrashedTarget}
			return
		}
		if csrFast {
			start := time.Now()
			b := route.Budget{MaxScans: cfg.MaxHops}
			if cfg.EpisodeTimeout > 0 {
				b.Deadline = start.Add(cfg.EpisodeTimeout)
			}
			if live {
				route.GreedyCSROverlay(ov, p.t, p.s, b, &ws.sc, &ws.out)
			} else {
				route.GreedyCSR(nw.Graph, p.t, p.s, b, &ws.sc, &ws.out)
			}
			recordEpisode(ws.out, time.Since(start))
		} else {
			eg, eobj := liveG, objective(p.t)
			if !bound.Empty() {
				eg, eobj = bound.View(eg, eobj, i)
			}
			if err := runEpisodeInto(eg, proto, eobj, p.s, cfg.MaxHops, cfg.EpisodeTimeout, &ws.sc, &ws.out); err != nil {
				episodes[i] = episode{done: true, err: err}
				return
			}
		}
		res := &ws.out
		ep := episode{done: true, success: res.Success, truncated: res.Truncated,
			failure: res.Failure, moves: res.Moves}
		if cfg.Observer != nil {
			// The worker's Result is reused next episode; replay needs a copy.
			ep.path = append([]int(nil), res.Path...)
		}
		if res.Success && cfg.ComputeStretch {
			// Stretch is measured against the fault-free graph: injected
			// faults change what routing sees, not what distance means. Under
			// a live overlay the fault-free truth is the overlay itself.
			d := 0
			if live {
				d = graph.BFSDistanceOn(ov, p.s, p.t)
			} else {
				d = graph.BFSDistance(nw.Graph, p.s, p.t)
			}
			if d > 0 {
				ep.stretch = float64(res.Moves) / float64(d)
			}
		}
		episodes[i] = ep
	}
	var batchErr error
	if cfg.Checkpoint == nil {
		batchErr = par.ForEachWorkerCtx(ctx, len(pairs), workers, runOne)
	} else {
		var fatal error
		batchErr, fatal = runCheckpointedBatches(ctx, cfg, episodes, runOne)
		if fatal != nil {
			return MilgramReport{}, fatal
		}
	}
	// A panic that escaped an episode (a buggy fault model or objective
	// factory; protocol panics are already converted to episode errors) was
	// contained by par: fail only this batch, with the episode named.
	var pe *par.PanicError
	if errors.As(batchErr, &pe) {
		return MilgramReport{}, fmt.Errorf("core: batch episode %d died: %w", pe.Index, pe)
	}
	// Propagate the first episode error (in episode order, so the reported
	// failure is deterministic regardless of worker scheduling).
	for i := range episodes {
		if err := episodes[i].err; err != nil {
			return MilgramReport{}, err
		}
	}

	// Replay per-move events to the observer, grouped by episode in episode
	// order: a deterministic stream even though routing ran concurrently.
	// Replay walks the fault-free graph and objective: the recorded paths
	// are what the faulty views routed, the replayed scores are the true
	// objective values along them.
	if cfg.Observer != nil {
		for i, p := range pairs {
			if !episodes[i].done {
				continue
			}
			route.Observe(liveG, objective(p.t), route.Result{Path: episodes[i].path}, i, cfg.Observer)
		}
	}

	rep := MilgramReport{Failures: map[route.Failure]int{}}
	successes := 0
	for i := range episodes {
		ep := &episodes[i]
		if !ep.done {
			rep.Cancelled++
			continue
		}
		rep.Attempts++
		if ep.truncated {
			rep.Truncated++
		}
		if !ep.success {
			// Hand-rolled external protocols may fail without classifying;
			// count those as dead ends, as the engine counters do.
			f := ep.failure
			if f == route.FailNone {
				f = route.FailDeadEnd
			}
			rep.Failures[f]++
			continue
		}
		successes++
		rep.Hops = append(rep.Hops, float64(ep.moves))
		if ep.stretch > 0 {
			rep.Stretches = append(rep.Stretches, ep.stretch)
		}
	}
	rep.Success = stats.NewProportion(successes, rep.Attempts)
	rep.MeanHops = stats.Mean(rep.Hops)
	rep.MeanStretch = stats.Mean(rep.Stretches)
	if batchErr != nil {
		// Cancelled mid-run: hand back what completed instead of dropping it.
		rep.Partial = true
		recordCancelled(rep.Cancelled)
		return rep, batchErr
	}
	return rep, nil
}
