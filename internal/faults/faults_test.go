package faults

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/route"
)

// testGraph is a minimal route.Graph for handcrafted topologies.
type testGraph struct {
	adj     [][]int32
	weights []float64
}

func newTestGraph(n int, edges [][2]int) *testGraph {
	g := &testGraph{adj: make([][]int32, n), weights: make([]float64, n)}
	for i := range g.weights {
		g.weights[i] = 1
	}
	for _, e := range edges {
		g.adj[e[0]] = append(g.adj[e[0]], int32(e[1]))
		g.adj[e[1]] = append(g.adj[e[1]], int32(e[0]))
	}
	return g
}

func (g *testGraph) N() int                  { return len(g.adj) }
func (g *testGraph) Neighbors(v int) []int32 { return g.adj[v] }
func (g *testGraph) Weight(v int) float64    { return g.weights[v] }

// star returns a hub-and-leaves graph with n-1 leaves.
func star(n int) *testGraph {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return newTestGraph(n, edges)
}

func constObjective(t int) route.Objective {
	return route.Objective{Target: t, Score: func(v int) float64 {
		if v == t {
			return math.Inf(1)
		}
		return float64(v)
	}}
}

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{"edge-drop", "crash-uniform", "crash-core", "msg-loss", "objective-noise"} {
		m, err := New(Spec{Model: name, Rate: 0.1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("built %q, asked for %q", m.Name(), name)
		}
	}
}

func TestNewUnknownModelListsRegistered(t *testing.T) {
	_, err := New(Spec{Model: "bogus", Rate: 0.1})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, name := range RegisteredSorted() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

func TestNewValidatesSpec(t *testing.T) {
	if _, err := New(Spec{Model: "edge-drop", Rate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := New(Spec{Model: "edge-drop", Rate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(Spec{Model: "msg-loss", Rate: 0.5, Retries: -1}); err == nil {
		t.Fatal("negative retry budget accepted")
	}
}

// collectQueries replays a fixed query sequence against a fresh episode view
// and records every returned adjacency list.
func collectQueries(b *BoundPlan, g route.Graph, episode int, queries []int) [][]int32 {
	fg, _ := b.View(g, constObjective(0), episode)
	out := make([][]int32, len(queries))
	for i, v := range queries {
		ns := fg.Neighbors(v)
		out[i] = append([]int32(nil), ns...)
	}
	return out
}

func TestEdgeDropDeterministicPerEpisode(t *testing.T) {
	g := star(200)
	plan, err := NewPlan(7, Spec{Model: "edge-drop", Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	queries := []int{0, 0, 1, 0, 5}
	a := collectQueries(b, g, 3, queries)
	if !reflect.DeepEqual(a, collectQueries(b, g, 3, queries)) {
		t.Fatal("same (seed, episode, query sequence) produced different faults")
	}
	if reflect.DeepEqual(a, collectQueries(b, g, 4, queries)) {
		t.Fatal("different episodes produced identical fault streams")
	}
	// Transience: repeated queries of the same vertex within an episode see
	// different surviving sets (the query counter advances).
	if reflect.DeepEqual(a[0], a[1]) && reflect.DeepEqual(a[0], a[3]) {
		t.Fatal("edge failures not transient within an episode")
	}
}

func TestEdgeDropRate(t *testing.T) {
	g := star(1001)
	const rate = 0.3
	plan, err := NewPlan(11, Spec{Model: "edge-drop", Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	fg, _ := plan.Bind(g).View(g, constObjective(0), 0)
	total := 0
	const queries = 200
	for q := 0; q < queries; q++ {
		total += len(fg.Neighbors(0))
	}
	got := float64(total) / float64(queries*1000)
	if got < 1-rate-0.03 || got > 1-rate+0.03 {
		t.Fatalf("survival rate %v, want ~%v", got, 1-rate)
	}
}

func TestMsgLossRetriesRecoverLosses(t *testing.T) {
	g := star(1001)
	const rate = 0.4
	survival := func(retries int) float64 {
		plan, err := NewPlan(13, Spec{Model: "msg-loss", Rate: rate, Retries: retries})
		if err != nil {
			t.Fatal(err)
		}
		fg, _ := plan.Bind(g).View(g, constObjective(0), 0)
		total := 0
		const queries = 100
		for q := 0; q < queries; q++ {
			total += len(fg.Neighbors(0))
		}
		return float64(total) / float64(queries*1000)
	}
	// Effective unreachability is rate^(retries+1).
	oneRetry := survival(1)
	threeRetries := survival(3)
	if want := 1 - rate*rate; math.Abs(oneRetry-want) > 0.02 {
		t.Fatalf("1 retry: survival %v, want ~%v", oneRetry, want)
	}
	if want := 1 - math.Pow(rate, 4); math.Abs(threeRetries-want) > 0.02 {
		t.Fatalf("3 retries: survival %v, want ~%v", threeRetries, want)
	}
	if threeRetries <= oneRetry {
		t.Fatal("a larger retry budget must recover more losses")
	}
}

func TestCrashUniform(t *testing.T) {
	g := star(2000)
	const rate = 0.25
	plan, err := NewPlan(17, Spec{Model: "crash-uniform", Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	crashed := 0
	for v := 0; v < g.N(); v++ {
		if b.Crashed(v) {
			crashed++
			if b.Crashed(v) != b.Crashed(v) {
				t.Fatal("crash membership not stable")
			}
		}
	}
	frac := float64(crashed) / float64(g.N())
	if frac < rate-0.05 || frac > rate+0.05 {
		t.Fatalf("crashed fraction %v, want ~%v", frac, rate)
	}
	// The faulty view never shows a crashed neighbor, in any episode.
	for ep := 0; ep < 3; ep++ {
		fg, _ := b.View(g, constObjective(0), ep)
		for _, u := range fg.Neighbors(0) {
			if b.Crashed(int(u)) {
				t.Fatalf("episode %d: crashed vertex %d still adjacent", ep, u)
			}
		}
	}
}

func TestCrashCoreTargetsHighestWeights(t *testing.T) {
	g := star(100)
	for v := range g.weights {
		g.weights[v] = float64(v + 1) // vertex 99 is the heaviest
	}
	plan, err := NewPlan(19, Spec{Model: "crash-core", Rate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	// Exactly the 10 heaviest vertices (90..99) are down.
	for v := 0; v < g.N(); v++ {
		want := v >= 90
		if b.Crashed(v) != want {
			t.Fatalf("vertex %d (weight %g): crashed = %v, want %v", v, g.Weight(v), b.Crashed(v), want)
		}
	}
}

func TestCrashCoreZeroFraction(t *testing.T) {
	g := star(50)
	plan, err := NewPlan(19, Spec{Model: "crash-core", Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	for v := 0; v < g.N(); v++ {
		if b.Crashed(v) {
			t.Fatalf("vertex %d crashed at rate 0", v)
		}
	}
	fg, _ := b.View(g, constObjective(0), 0)
	if len(fg.Neighbors(0)) != 49 {
		t.Fatal("rate-0 crash model dropped edges")
	}
}

func TestObjectiveNoise(t *testing.T) {
	g := star(100)
	for v := range g.weights {
		g.weights[v] = float64(v + 1)
	}
	plan, err := NewPlan(23, Spec{Model: "objective-noise", Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	// Scores well below 1 so M_v = min{w_v, phi(v)^-1} exceeds 1 and the
	// noise exponent has something to act on.
	obj := route.Objective{Target: 7, Score: func(v int) float64 {
		if v == 7 {
			return math.Inf(1)
		}
		return 0.001 * float64(v+1)
	}}
	_, noisy := b.View(g, obj, 0)
	if !math.IsInf(noisy.Score(7), 1) {
		t.Fatal("noise must keep the target at +Inf")
	}
	changed := 0
	for v := 10; v < 100; v++ {
		s, ns := obj.Score(v), noisy.Score(v)
		if ns != s {
			changed++
		}
		if ns <= 0 || math.IsInf(ns, 0) || math.IsNaN(ns) {
			t.Fatalf("vertex %d: noisy score %v degenerate", v, ns)
		}
	}
	if changed == 0 {
		t.Fatal("noise changed no score")
	}
	// Per-plan noise: every episode sees the same miscalibration.
	_, again := b.View(g, obj, 5)
	for v := 10; v < 100; v++ {
		if noisy.Score(v) != again.Score(v) {
			t.Fatalf("vertex %d: noise differs across episodes", v)
		}
	}
}

func TestPlanLayersCompose(t *testing.T) {
	g := star(500)
	plan, err := NewPlan(29,
		Spec{Model: "crash-uniform", Rate: 0.2},
		Spec{Model: "edge-drop", Rate: 0.3},
		Spec{Model: "objective-noise", Rate: 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	if b.Empty() {
		t.Fatal("three-layer plan reports empty")
	}
	fg, fobj := b.View(g, constObjective(0), 0)
	// Crash layer composes with the drop layer: no crashed neighbor appears,
	// and additional transient drops push survival below the crash layer's.
	for _, u := range fg.Neighbors(0) {
		if b.Crashed(int(u)) {
			t.Fatalf("crashed vertex %d visible through layered view", u)
		}
	}
	if !math.IsInf(fobj.Score(0), 1) {
		t.Fatal("layered objective lost the target maximum")
	}
	total, alive := 0, 0
	for v := 1; v < g.N(); v++ {
		if !b.Crashed(v) {
			alive++
		}
	}
	const queries = 100
	for q := 0; q < queries; q++ {
		total += len(fg.Neighbors(0))
	}
	avg := float64(total) / queries
	if avg >= float64(alive) {
		t.Fatalf("edge-drop layer inert: %v survivors vs %d alive", avg, alive)
	}
}

func TestNilAndEmptyPlans(t *testing.T) {
	g := star(10)
	var nilPlan *Plan
	b := nilPlan.Bind(g)
	if !b.Empty() {
		t.Fatal("nil plan not empty")
	}
	fg, _ := b.View(g, constObjective(0), 0)
	if fg != route.Graph(g) {
		t.Fatal("nil plan wrapped the graph")
	}
	if b.Crashed(3) {
		t.Fatal("nil plan crashed a vertex")
	}
	var nilBound *BoundPlan
	if fg, _ := nilBound.View(g, constObjective(0), 0); fg != route.Graph(g) {
		t.Fatal("nil bound plan wrapped the graph")
	}
}

// TestConcurrentEpisodesDeterministic is the heart of the determinism
// contract: many goroutines routing over per-episode views of one bound plan
// must observe exactly the fault stream a sequential replay observes. Run
// with -race.
func TestConcurrentEpisodesDeterministic(t *testing.T) {
	g := star(300)
	plan, err := NewPlan(31,
		Spec{Model: "crash-uniform", Rate: 0.1},
		Spec{Model: "edge-drop", Rate: 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := plan.Bind(g)
	queries := []int{0, 0, 3, 0, 7, 0}

	const episodes = 64
	sequential := make([][][]int32, episodes)
	for ep := 0; ep < episodes; ep++ {
		sequential[ep] = collectQueries(b, g, ep, queries)
	}
	concurrent := make([][][]int32, episodes)
	var wg sync.WaitGroup
	for ep := 0; ep < episodes; ep++ {
		wg.Add(1)
		go func(ep int) {
			defer wg.Done()
			concurrent[ep] = collectQueries(b, g, ep, queries)
		}(ep)
	}
	wg.Wait()
	for ep := 0; ep < episodes; ep++ {
		if !reflect.DeepEqual(sequential[ep], concurrent[ep]) {
			t.Fatalf("episode %d: concurrent fault stream differs from sequential", ep)
		}
	}
}
