package faults

import (
	"repro/internal/route"
)

// The two link-level fault models. Both reuse dropGraph, an episode-scoped
// adjacency filter whose drop decisions are pure functions of
// (seed, episode, query index, edge) — no shared RNG, so concurrent episodes
// over one bound model stay bit-identical to sequential ones.

func init() {
	Register("edge-drop", func(s Spec) (Model, error) {
		return edgeDrop{rate: s.Rate}, nil
	})
	Register("msg-loss", func(s Spec) (Model, error) {
		retries := s.Retries
		if retries == 0 {
			retries = 1
		}
		return msgLoss{rate: s.Rate, retries: retries}, nil
	})
}

// edgeDrop is the transient link-failure model of the remark after Theorem
// 3.5: every adjacency query independently drops each incident edge with the
// configured probability. Failures are transient — the same edge may be
// present again on the very next query — which is exactly the regime in
// which the paper argues greedy routing keeps working ("the current vertex
// can send the message to any other good neighbor instead").
type edgeDrop struct{ rate float64 }

// Name returns "edge-drop".
func (edgeDrop) Name() string { return "edge-drop" }

// Bind attaches the model to a graph; edge-drop keeps no per-graph state.
func (m edgeDrop) Bind(g route.Graph, seed uint64) Bound {
	return boundDrop{seed: seed, dropProb: m.rate}
}

// msgLoss models lossy forwarding with a bounded retry budget: each message
// transmission is lost independently with probability rate, and the sender
// retries a failed forward up to retries times before giving that neighbor
// up for the current step. A neighbor is therefore unreachable for one
// query with probability rate^(retries+1) — retries recover most losses, but
// a bounded budget means sustained loss still reroutes or strands the
// message, unlike an idealized reliable link.
type msgLoss struct {
	rate    float64
	retries int
}

// Name returns "msg-loss".
func (msgLoss) Name() string { return "msg-loss" }

// Bind attaches the model to a graph; the effective per-query drop
// probability folds the retry budget in.
func (m msgLoss) Bind(g route.Graph, seed uint64) Bound {
	eff := 1.0
	for i := 0; i <= m.retries; i++ {
		eff *= m.rate
	}
	return boundDrop{seed: seed, dropProb: eff}
}

// boundDrop instantiates per-episode dropGraph views for both link models.
type boundDrop struct {
	noCrash
	seed     uint64
	dropProb float64
}

// View wraps the episode's graph with a fresh drop filter. The objective
// passes through untouched.
func (b boundDrop) View(g route.Graph, obj route.Objective, episode int) (route.Graph, route.Objective) {
	if b.dropProb <= 0 {
		return g, obj
	}
	return &dropGraph{inner: g, seed: b.seed, episode: uint64(episode), dropProb: b.dropProb}, obj
}

// dropGraph drops each incident edge independently per adjacency query. One
// instance serves one episode: the query counter and the reused neighbor
// buffer are goroutine-local by construction, which is what made the model
// safe where the removed route.FlakyGraph's shared buffer was not.
type dropGraph struct {
	inner    route.Graph
	seed     uint64
	episode  uint64
	dropProb float64
	queries  uint64
	buf      []int32
}

// N returns the number of vertices.
func (d *dropGraph) N() int { return d.inner.N() }

// Weight returns the vertex weight of the wrapped graph.
func (d *dropGraph) Weight(v int) float64 { return d.inner.Weight(v) }

// Neighbors returns the neighbors of v that survive this query's coin flips.
// Each call advances the episode's query counter, so repeated queries see
// independent (but fully deterministic) failure patterns. The returned slice
// is reused across calls, matching the route.Graph convention.
func (d *dropGraph) Neighbors(v int) []int32 {
	all := d.inner.Neighbors(v)
	q := d.queries
	d.queries++
	d.buf = d.buf[:0]
	for _, u := range all {
		if hashFloat(d.seed, d.episode, q, uint64(v)<<32^uint64(uint32(u))) >= d.dropProb {
			d.buf = append(d.buf, u)
		}
	}
	return d.buf
}

var _ route.Graph = (*dropGraph)(nil)
