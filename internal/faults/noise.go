package faults

import (
	"math"

	"repro/internal/route"
)

// objective-noise recasts Theorem 3.5's relaxation as an injectable fault:
// instead of the true objective phi the protocol routes by
// phitilde(v) = phi(v) * M_v^{delta_v} with M_v = min{w_v, phi(v)^-1} and
// delta_v drawn per vertex uniformly from [-rate, +rate]. With rate -> 0
// this is the o(1)-exponent relaxation the theorem proves harmless; larger
// rates stress-test beyond it. Unlike route.NewRelaxed it works on any
// route.Graph (not just *graph.Graph), composes with the other fault layers,
// and recomputes the hash-based noise on the fly instead of allocating an
// O(n) cache per episode.

func init() {
	Register("objective-noise", func(s Spec) (Model, error) {
		return objectiveNoise{eps: s.Rate}, nil
	})
}

type objectiveNoise struct{ eps float64 }

// Name returns "objective-noise".
func (objectiveNoise) Name() string { return "objective-noise" }

// Bind attaches the model to a graph.
func (m objectiveNoise) Bind(g route.Graph, seed uint64) Bound {
	return boundNoise{seed: seed, eps: m.eps}
}

type boundNoise struct {
	noCrash
	seed uint64
	eps  float64
}

// View wraps the objective with per-vertex multiplicative noise. The noise
// is per-plan, not per-episode: a vertex misjudges its objective the same
// way in every episode, as a consistently miscalibrated node would. The
// target keeps its +Inf score, so it remains the unique maximum.
func (b boundNoise) View(g route.Graph, obj route.Objective, episode int) (route.Graph, route.Objective) {
	if b.eps <= 0 {
		return g, obj
	}
	inner := obj.Score
	target := obj.Target
	noisy := func(v int) float64 {
		if v == target {
			return math.Inf(1)
		}
		phi := inner(v)
		m := g.Weight(v)
		if inv := 1 / phi; inv < m {
			m = inv
		}
		if m < 1 {
			m = 1 // the noise exponent is only meaningful on the >= 1 scale
		}
		delta := (2*hashFloat(b.seed, uint64(v)) - 1) * b.eps
		return phi * math.Pow(m, delta)
	}
	return g, route.Objective{Target: target, Score: noisy}
}
