package faults

import (
	"sort"

	"repro/internal/route"
)

// The two permanent-failure models. A crashed vertex disappears from every
// adjacency list for the whole plan lifetime; an episode whose endpoint is
// crashed cannot succeed, which engines classify as "crashed-target" via
// Bound.Crashed without running the protocol.

func init() {
	Register("crash-uniform", func(s Spec) (Model, error) {
		return crashUniform{rate: s.Rate}, nil
	})
	Register("crash-core", func(s Spec) (Model, error) {
		return crashCore{fraction: s.Rate}, nil
	})
}

// crashUniform crashes each vertex independently with the configured
// probability — uniform churn, the failure mode of random node departures.
// Membership is a pure hash of (seed, vertex), so no per-graph state is
// needed and lookups are O(1).
type crashUniform struct{ rate float64 }

// Name returns "crash-uniform".
func (crashUniform) Name() string { return "crash-uniform" }

// Bind attaches the model to a graph.
func (m crashUniform) Bind(g route.Graph, seed uint64) Bound {
	return &boundCrash{seed: seed, rate: m.rate}
}

// crashCore crashes the top fraction of vertices by model weight — an
// adversarial attack on the network core. Figure 1's first phase routes
// every message through exactly those doubly-exponentially heavier hubs, so
// this is the attack the greedy trajectory is most exposed to; Theorem 3.4
// predicts the patching protocols degrade more gracefully because they
// still exhaust whatever component survives.
type crashCore struct{ fraction float64 }

// Name returns "crash-core".
func (crashCore) Name() string { return "crash-core" }

// Bind ranks the graph's vertices by weight (ties broken by id, so the crash
// set is deterministic) and marks the top fraction crashed.
func (m crashCore) Bind(g route.Graph, seed uint64) Bound {
	n := g.N()
	k := int(m.fraction * float64(n))
	if k <= 0 {
		return &boundCrash{seed: seed}
	}
	if k > n {
		k = n
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := g.Weight(int(order[i])), g.Weight(int(order[j]))
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	crashed := make([]bool, n)
	for _, v := range order[:k] {
		crashed[v] = true
	}
	return &boundCrash{seed: seed, set: crashed}
}

// boundCrash serves both crash models: a nil set means hash-based uniform
// membership at the given rate, a non-nil set is an explicit crash list.
type boundCrash struct {
	seed uint64
	rate float64
	set  []bool
}

// Crashed reports whether v is permanently failed.
func (b *boundCrash) Crashed(v int) bool {
	if b.set != nil {
		return v >= 0 && v < len(b.set) && b.set[v]
	}
	if b.rate <= 0 {
		return false
	}
	return hashFloat(b.seed, uint64(v)) < b.rate
}

// View hides crashed vertices from the episode's adjacency lists. The
// objective passes through: protocols may still score a crashed vertex they
// can no longer reach, which is exactly what a live node routing around a
// dead neighbor experiences.
func (b *boundCrash) View(g route.Graph, obj route.Objective, episode int) (route.Graph, route.Objective) {
	if b.set == nil && b.rate <= 0 {
		return g, obj
	}
	return &crashGraph{inner: g, bound: b}, obj
}

// crashGraph filters crashed vertices out of adjacency lists. One instance
// serves one episode so the neighbor buffer is goroutine-local.
type crashGraph struct {
	inner route.Graph
	bound *boundCrash
	buf   []int32
}

// N returns the number of vertices (crashed vertices keep their ids; they
// are unreachable, not renumbered).
func (c *crashGraph) N() int { return c.inner.N() }

// Weight returns the vertex weight of the wrapped graph.
func (c *crashGraph) Weight(v int) float64 { return c.inner.Weight(v) }

// Neighbors returns v's surviving neighbors. The returned slice is reused
// across calls.
func (c *crashGraph) Neighbors(v int) []int32 {
	all := c.inner.Neighbors(v)
	c.buf = c.buf[:0]
	for _, u := range all {
		if !c.bound.Crashed(int(u)) {
			c.buf = append(c.buf, u)
		}
	}
	return c.buf
}

var _ route.Graph = (*crashGraph)(nil)
