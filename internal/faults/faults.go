// Package faults is the composable fault-injection subsystem of the
// robustness story: Theorem 3.4 promises that patching protocols succeed
// within a component under (P1)-(P3), Theorem 3.5 that every result survives
// approximate objectives, and the remark after Theorem 3.5 that greedy
// routing tolerates failing edges because "the current vertex can send the
// message to any other good neighbor instead". This package turns those
// claims into injectable faults that layer over any route.Graph /
// route.Objective pair:
//
//   - "edge-drop":       transient per-query edge failures (the remark after
//     Theorem 3.5; replaced the removed route.FlakyGraph)
//   - "crash-uniform":   permanent uniform vertex churn
//   - "crash-core":      adversarial crash of the highest-weight vertices —
//     an attack on the core that Figure 1's first phase
//     routes through
//   - "msg-loss":        per-transmission message loss with a bounded retry
//     budget
//   - "objective-noise": the multiplicative relaxation of Theorem 3.5 recast
//     as an injectable fault
//
// Models compose: a Plan layers any subset in order, each layer drawing from
// its own derived seed. Every fault decision is a pure function of
// (seed, episode, query), so faulty batches are bit-identical across worker
// counts and across runs — the engine's determinism guarantee survives chaos.
// Like route's protocols, models live in a name-keyed registry (Register /
// New) so CLIs derive their usage text and error messages from the
// registered set.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/route"
)

// Spec selects and parameterizes one fault model by registered name. It is
// the wire- and CLI-facing configuration unit: -fault-model/-fault-rate
// flags map to one Spec, and the JSON tags let services accept a per-request
// plan as a list of specs in a request body (see NewPlan).
type Spec struct {
	// Model is the registered model name ("edge-drop", "crash-uniform", ...).
	Model string `json:"model"`
	// Rate is the model's severity knob in [0, 1]: the per-query edge drop
	// probability, the crashed-vertex fraction, the per-transmission loss
	// probability, or the noise amplitude eps of Theorem 3.5.
	Rate float64 `json:"rate"`
	// Retries bounds the per-forward retry budget of "msg-loss" (ignored by
	// the other models); 0 means the model default of 1 retry.
	Retries int `json:"retries,omitempty"`
}

// Model is one fault model. Bind precomputes any per-graph state (crash
// sets, weight quantiles) once per plan; the returned Bound then instantiates
// cheap episode-scoped faulty views.
type Model interface {
	// Name is the registry key, e.g. "edge-drop".
	Name() string
	// Bind attaches the model to a graph under a derived seed.
	Bind(g route.Graph, seed uint64) Bound
}

// Bound is a fault model bound to one graph. Implementations must be safe
// for concurrent View calls; the views they return are episode-scoped and
// used by a single goroutine each.
type Bound interface {
	// View wraps the (possibly already fault-wrapped) graph and objective of
	// one episode. All randomness must derive from the bound seed, the
	// episode number, and the per-episode query sequence — never from shared
	// mutable state — so batches stay deterministic at any worker count.
	View(g route.Graph, obj route.Objective, episode int) (route.Graph, route.Objective)
	// Crashed reports whether vertex v is permanently failed under this
	// model (false for all v under purely transient models). Engines use it
	// to classify episodes whose endpoint is gone as "crashed-target"
	// without running the protocol.
	Crashed(v int) bool
}

// Builder constructs a model from a spec. Builders validate spec fields and
// return descriptive errors; rate bounds are checked centrally by New.
type Builder func(Spec) (Model, error)

// The fault-model registry, mirroring route's protocol registry: built-ins
// self-register at init, external models join through Register, and CLIs
// derive usage text and unknown-name errors from the registered set.
var (
	regMu     sync.RWMutex
	regByName = map[string]Builder{}
	regOrder  []string
)

// Register adds a fault-model builder to the registry. It panics on an empty
// name or a duplicate registration — both are programming errors caught at
// init time.
func Register(name string, b Builder) {
	if name == "" {
		panic("faults: Register with empty model name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[name]; dup {
		panic("faults: duplicate model registration " + name)
	}
	regByName[name] = b
	regOrder = append(regOrder, name)
}

// New builds a fault model from its spec. The error for an unknown model
// name lists every registered model.
func New(spec Spec) (Model, error) {
	regMu.RLock()
	b, ok := regByName[spec.Model]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("faults: unknown fault model %q (registered: %s)",
			spec.Model, strings.Join(RegisteredSorted(), ", "))
	}
	if spec.Rate < 0 || spec.Rate > 1 {
		return nil, fmt.Errorf("faults: %s rate %g outside [0, 1]", spec.Model, spec.Rate)
	}
	if spec.Retries < 0 {
		return nil, fmt.Errorf("faults: %s with negative retry budget %d", spec.Model, spec.Retries)
	}
	return b(spec)
}

// Registered returns the registered model names in registration order
// (built-ins first, then external registrations).
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	return out
}

// RegisteredSorted returns the registered model names in lexicographic
// order, for stable display in usage text and error messages.
func RegisteredSorted() []string {
	names := Registered()
	sort.Strings(names)
	return names
}

// Plan layers fault models over a graph/objective pair. The zero value (and
// a nil *Plan) injects nothing. Models apply in order: model i wraps the
// views produced by models 0..i-1.
type Plan struct {
	// Seed drives every fault decision; each model layer derives an
	// independent stream from it.
	Seed uint64
	// Models are the layered fault models.
	Models []Model
}

// NewPlan builds a plan from specs via the registry, resolving each spec in
// order.
func NewPlan(seed uint64, specs ...Spec) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, s := range specs {
		m, err := New(s)
		if err != nil {
			return nil, err
		}
		p.Models = append(p.Models, m)
	}
	return p, nil
}

// Bind precomputes the per-graph state of every layer (crash sets, weight
// thresholds) and returns a bound plan. Binding is done once per batch; the
// bound plan then serves concurrent episodes. Bind on a nil or empty plan
// returns a no-op bound plan.
func (p *Plan) Bind(g route.Graph) *BoundPlan {
	if p == nil {
		return &BoundPlan{}
	}
	b := &BoundPlan{}
	for i, m := range p.Models {
		// Each layer gets a decorrelated seed so stacking a model twice, or
		// reordering layers, changes the fault stream.
		b.layers = append(b.layers, m.Bind(g, hash64(p.Seed, uint64(i)+1, stringHash(m.Name()))))
	}
	return b
}

// BoundPlan is a plan bound to one graph, ready to instantiate episode views.
type BoundPlan struct {
	layers []Bound
}

// View returns the faulty graph and objective for one episode, layering
// every bound model in plan order. The returned views are episode-scoped:
// they may carry per-episode counters and buffers and must not be shared
// across goroutines.
func (b *BoundPlan) View(g route.Graph, obj route.Objective, episode int) (route.Graph, route.Objective) {
	if b == nil {
		return g, obj
	}
	for _, l := range b.layers {
		g, obj = l.View(g, obj, episode)
	}
	return g, obj
}

// Crashed reports whether any layer permanently failed vertex v.
func (b *BoundPlan) Crashed(v int) bool {
	if b == nil {
		return false
	}
	for _, l := range b.layers {
		if l.Crashed(v) {
			return true
		}
	}
	return false
}

// Empty reports whether the bound plan injects no faults at all.
func (b *BoundPlan) Empty() bool { return b == nil || len(b.layers) == 0 }

// noCrash is embedded by purely transient bounds to satisfy Crashed.
type noCrash struct{}

// Crashed always reports false: the model fails no vertex permanently.
func (noCrash) Crashed(int) bool { return false }

// hash64 mixes any number of words into one well-distributed 64-bit value
// with splitmix64 finalization — the pure function behind every fault
// decision.
func hash64(vals ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// hashFloat maps the mixed words to a uniform value in [0, 1).
func hashFloat(vals ...uint64) float64 {
	return float64(hash64(vals...)>>11) * 0x1p-53
}

// stringHash folds a model name into the seed derivation (FNV-1a).
func stringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
