// Package repro's root benchmarks regenerate every table and figure of the
// reproduction (one benchmark per experiment of DESIGN.md Section 4) plus
// end-to-end generator/router benchmarks. By default the experiments run at
// a reduced scale so `go test -bench=.` finishes in minutes; set
// REPRO_BENCH_SCALE=1 to reproduce the full tables recorded in
// EXPERIMENTS.md (cmd/smallworld prints the same tables interactively).
//
// Benchmarks report experiment metrics (success rates, fitted slopes,
// stretch) through testing.B.ReportMetric, so the shapes the paper predicts
// are visible straight from the benchmark output.
package repro

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/girg"
	"repro/internal/graph"
	"repro/internal/hrg"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/xrand"
)

func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// runExperiment executes one registered experiment per benchmark iteration
// and reports its headline metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := expt.Config{Seed: 1, Scale: benchScale()}
	var last expt.Table
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		t, err := e.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = t
	}
	for name, v := range last.Metrics {
		b.ReportMetric(v, name)
	}
}

// One benchmark per table/figure (DESIGN.md Section 4).

func BenchmarkE1SuccessProbability(b *testing.B)      { runExperiment(b, "E1") }
func BenchmarkE2FailureVsWmin(b *testing.B)           { runExperiment(b, "E2") }
func BenchmarkE3SuccessVsEndpointWeight(b *testing.B) { runExperiment(b, "E3") }
func BenchmarkE4PathLengthScaling(b *testing.B)       { runExperiment(b, "E4") }
func BenchmarkE5Stretch(b *testing.B)                 { runExperiment(b, "E5") }
func BenchmarkE6Patching(b *testing.B)                { runExperiment(b, "E6") }
func BenchmarkE7Relaxations(b *testing.B)             { runExperiment(b, "E7") }
func BenchmarkE8Hyperbolic(b *testing.B)              { runExperiment(b, "E8") }
func BenchmarkE9KleinbergBaseline(b *testing.B)       { runExperiment(b, "E9") }
func BenchmarkE10GeometricVsGreedy(b *testing.B)      { runExperiment(b, "E10") }
func BenchmarkE11ModelValidation(b *testing.B)        { runExperiment(b, "E11") }
func BenchmarkE12EdgeFailures(b *testing.B)           { runExperiment(b, "E12") }
func BenchmarkE13RefinedBound(b *testing.B)           { runExperiment(b, "E13") }
func BenchmarkE14GeometryNecessity(b *testing.B)      { runExperiment(b, "E14") }
func BenchmarkE15LayerStructure(b *testing.B)         { runExperiment(b, "E15") }
func BenchmarkE16ChaosSweep(b *testing.B)             { runExperiment(b, "E16") }
func BenchmarkE17ChurnSweep(b *testing.B)             { runExperiment(b, "E17") }
func BenchmarkF1Trajectory(b *testing.B)              { runExperiment(b, "F1") }

// End-to-end pipeline benchmarks: how fast the library generates and routes.

func BenchmarkPipelineGIRGGenerate(b *testing.B) {
	n := 20000 * benchScale() * 10
	if n < 2000 {
		n = 2000
	}
	p := girg.DefaultParams(n)
	p.FixedN = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := girg.Generate(p, uint64(i+1), girg.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.M()), "edges")
	}
}

func BenchmarkPipelineGreedyEpisodes(b *testing.B) {
	p := girg.DefaultParams(20000)
	p.FixedN = true
	nw, err := core.NewGIRG(p, 5, girg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.RunMilgram(nw, core.MilgramConfig{Pairs: 50, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Success.P, "success")
	}
}

// Overlay-path variants of the pipeline bench: the same 50-episode batches,
// routed over a live overlay. The empty variant must cost the same as the
// base bench — an empty overlay routes through the unchanged CSR fast
// paths — while the churn variant (2% joins wired to 3 contacts each, 2%
// tombstoned leaves) bounds the merged-adjacency overhead of a live graph;
// BENCH_pr8.json (`make bench-overlay`) holds it to <= 1.5x ms/op.

func overlayBenchNetwork(b *testing.B, churn bool) *core.Network {
	b.Helper()
	p := girg.DefaultParams(20000)
	p.FixedN = true
	nw, err := core.NewGIRG(p, 5, girg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := nw.Graph
	ov := graph.NewOverlay(g)
	if churn {
		rng := xrand.New(77)
		dim := g.Space().Dim()
		e := ov.Edit()
		for i := 0; i < g.N()/50; i++ {
			pos := make([]float64, dim)
			for d := range pos {
				pos[d] = rng.Float64()
			}
			id, err := e.AddVertex(pos, g.WMin()*(1+rng.Float64()))
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < 3; k++ {
				if u := rng.IntN(g.N()); !e.Tombstoned(u) && !e.HasEdge(id, u) {
					if err := e.AddEdge(id, u); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		for picked := 0; picked < g.N()/50; {
			if v := rng.IntN(g.N()); !e.Tombstoned(v) {
				if err := e.RemoveVertex(v); err != nil {
					b.Fatal(err)
				}
				picked++
			}
		}
		ov = e.Finish()
	}
	if err := nw.SetOverlay(ov); err != nil {
		b.Fatal(err)
	}
	return nw
}

func benchOverlayEpisodes(b *testing.B, churn bool) {
	nw := overlayBenchNetwork(b, churn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.RunMilgram(nw, core.MilgramConfig{Pairs: 50, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Success.P, "success")
	}
}

func BenchmarkPipelineGreedyEpisodesOverlayEmpty(b *testing.B) { benchOverlayEpisodes(b, false) }
func BenchmarkPipelineGreedyEpisodesOverlayChurn(b *testing.B) { benchOverlayEpisodes(b, true) }

// BenchmarkGreedyEpisode is the hot-path benchmark of the v2 routing
// surface: one standard-φ greedy episode through route.GreedyCSR with
// reused Scratch/Result buffers. The headline number is allocs/op, which
// must be 0 — TestGreedyCSRZeroAlloc in internal/route enforces the same
// property with testing.AllocsPerRun, so a regression fails the test suite,
// not just this benchmark's eyeball check.
func BenchmarkGreedyEpisode(b *testing.B) {
	p := girg.DefaultParams(20000)
	p.FixedN = true
	nw, err := core.NewGIRG(p, 5, girg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := nw.Graph
	giant := graph.GiantComponent(g)
	rng := xrand.New(7)
	const nPairs = 64
	pairs := make([][2]int, nPairs)
	for i := range pairs {
		pairs[i] = [2]int{giant[rng.IntN(len(giant))], giant[rng.IntN(len(giant))]}
	}
	var (
		sc  route.Scratch
		out route.Result
	)
	budget := route.Budget{MaxScans: 1 << 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i%nPairs]
		route.GreedyCSR(g, pr[1], pr[0], budget, &sc, &out)
	}
}

// BenchmarkServeRouteBatch measures the HTTP batch surface end to end —
// JSON decode, admission, per-item breaker/retry bookkeeping, routing on
// pooled episode state, JSON encode — in queries, not requests: divide
// ns/op by the batch size for the per-query cost.
func BenchmarkServeRouteBatch(b *testing.B) {
	p := girg.DefaultParams(20000)
	p.FixedN = true
	nw, err := core.NewGIRG(p, 5, girg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	srv.AddNetwork(serve.DefaultGraph, nw)
	h := srv.Handler()

	giant := graph.GiantComponent(nw.Graph)
	rng := xrand.New(7)
	const batch = 64
	items := make([]serve.BatchItem, batch)
	for i := range items {
		items[i] = serve.BatchItem{S: giant[rng.IntN(len(giant))], T: giant[rng.IntN(len(giant))]}
	}
	body, err := json.Marshal(serve.BatchRouteRequest{Items: items})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/route/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("batch status = %d", w.Code)
		}
	}
	b.ReportMetric(batch, "queries/req")
}

func BenchmarkPipelineHRGGenerate(b *testing.B) {
	p := hrg.DefaultParams(5000)
	for i := 0; i < b.N; i++ {
		if _, err := hrg.Generate(p, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchmarkExperimentIDs keeps the benchmark list in sync with the
// registry: every registered experiment must have a benchmark above.
func TestBenchmarkExperimentIDs(t *testing.T) {
	covered := map[string]bool{
		"E1": true, "E2": true, "E3": true, "E4": true, "E5": true,
		"E6": true, "E7": true, "E8": true, "E9": true, "E10": true,
		"E11": true, "E12": true, "E13": true, "E14": true, "E15": true,
		"E16": true, "E17": true, "F1": true,
	}
	for _, e := range expt.All() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark in bench_test.go", e.ID)
		}
	}
}
