# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test race vet cover bench bench-full experiments examples clean

all: check

# The default verification gate: static checks plus the full test suite
# under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./...

# Reduced-scale benchmark pass (one iteration per experiment).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full-scale benchmark pass: reproduces the EXPERIMENTS.md workloads.
bench-full:
	REPRO_BENCH_SCALE=1 $(GO) test -bench=. -benchmem -benchtime=1x -timeout=2h .

# Regenerate every experiment table at full scale (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/smallworld -e all -scale 1 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/milgram
	$(GO) run ./examples/internet
	$(GO) run ./examples/trajectory
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
