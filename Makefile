# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check vuln build test race vet cover bench bench-full bench-routing bench-cluster bench-replication bench-trace perf-smoke experiments examples clean

all: check

# The default verification gate: static checks plus the full test suite
# under the race detector, and a vulnerability scan when the scanner is
# installed.
check: vuln
	$(GO) vet ./...
	$(GO) test -race ./...

# govulncheck when available (CI installs it; locally it is optional:
# `go install golang.org/x/vuln/cmd/govulncheck@latest`).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./...

# Reduced-scale benchmark pass (one iteration per experiment).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full-scale benchmark pass: reproduces the EXPERIMENTS.md workloads.
bench-full:
	REPRO_BENCH_SCALE=1 $(GO) test -bench=. -benchmem -benchtime=1x -timeout=2h .

# Routing hot-path benchmarks, recorded into a committed JSON snapshot.
# Refreshes the "after" numbers in BENCH_pr6.json and preserves the
# committed "before" baseline, so the zero-alloc fast path stays honest.
BENCH_JSON ?= BENCH_pr6.json
bench-routing:
	$(GO) test -run='^$$' -bench='GreedyEpisode|ServeRouteBatch' -benchmem -benchtime=2s . \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_JSON) -key after

# Cluster forwarding overhead: POST /route end to end against one daemon vs
# a 3-shard loopback cluster, recorded into BENCH_pr7.json.
BENCH_CLUSTER_JSON ?= BENCH_pr7.json
bench-cluster:
	$(GO) test -run='^$$' -bench='RouteSingleNode$$' -benchmem -benchtime=2s ./internal/serve/ \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_CLUSTER_JSON) -key single-node
	$(GO) test -run='^$$' -bench='RouteCluster3Shard$$' -benchmem -benchtime=2s ./internal/serve/ \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_CLUSTER_JSON) -key cluster-3shard

# Replication forwarding overhead: the 3-shard loopback cluster with every
# shard served by two replicas (failover-ordered owner resolution, hedging
# armed but never firing), against the single-replica cluster baseline —
# gated at <= 1.25x the single-replica ms/op in review, recorded into
# BENCH_pr9.json.
BENCH_REPLICATION_JSON ?= BENCH_pr9.json
bench-replication:
	$(GO) test -run='^$$' -bench='RouteCluster3Shard$$' -benchmem -benchtime=2s ./internal/serve/ \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_REPLICATION_JSON) -key cluster-3shard
	$(GO) test -run='^$$' -bench='RouteCluster3Shard2Replica$$' -benchmem -benchtime=2s ./internal/serve/ \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_REPLICATION_JSON) -key cluster-3shard-2replica

# Live-overlay routing overhead: the pipeline episode batches on the plain
# CSR base, with an empty overlay attached (must cost the same), and over a
# churned overlay (2% joins + 2% leaves; gated at <= 1.5x ms/op in review),
# recorded into BENCH_pr8.json.
BENCH_OVERLAY_JSON ?= BENCH_pr8.json
bench-overlay:
	$(GO) test -run='^$$' -bench='PipelineGreedyEpisodes' -benchmem -benchtime=5s . \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_OVERLAY_JSON) -key pipeline

# Distributed-tracing overhead guard: the engine hot path and the pipeline
# episode batches with tracing disabled (nil span log — the default), which
# must stay at the pre-tracing numbers (0 allocs/op on GreedyEpisode, ≤2%
# drift on the pipeline), recorded into BENCH_pr10.json.
BENCH_TRACE_JSON ?= BENCH_pr10.json
bench-trace:
	$(GO) test -run='^$$' -bench='^BenchmarkGreedyEpisode$$|PipelineGreedyEpisodes$$' -benchmem -benchtime=2s . \
	  | tee /dev/stderr | $(GO) run ./cmd/benchjson -out $(BENCH_TRACE_JSON) -key untraced

# In-process daemon + open-loop load generator with latency/success gates:
# the CI perf smoke. Tune the gates there, not here.
perf-smoke:
	$(GO) run ./cmd/loadgen -self -n 20000 -rps 150 -duration 15s -batch 8 \
	  -max-p99-ms 500 -min-success 0.99

# Regenerate every experiment table at full scale (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/smallworld -e all -scale 1 -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/milgram
	$(GO) run ./examples/internet
	$(GO) run ./examples/trajectory
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
